"""The distributed proposal algorithm for the token dropping game (Theorem 4.1).

Section 4.1 of the paper: in every *game round*,

* every **active and unoccupied** node (a node without a token that has at
  least one parent holding a token) requests a token from some parent that
  has a token, ties broken arbitrarily;
* every node that receives at least one request passes its token to one
  (arbitrarily chosen) requesting child, thereby consuming that edge;
* a node terminates when it is occupied with no children, or unoccupied
  with no parents; terminated nodes are removed from the game.

Theorem 4.1 shows this finishes in ``O(L · Δ²)`` game rounds.

Implementation notes
--------------------
The paper folds the request/grant exchange into one "round"; to know which
parents currently hold a token a node additionally needs the parents'
occupancy announcements, so one *game round* here costs three LOCAL
communication rounds (ANNOUNCE → REQUEST → GRANT).  This is the constant
factor the paper alludes to ("each round of our algorithm actually
consists of two synchronous communication rounds"); the reproduction
reports both raw communication rounds and game rounds.

Tokens are tagged with the identifier of their starting node so the
traversals required by the output specification can be reconstructed
exactly from the per-node outputs (see :func:`reconstruct_solution`).
"""

from __future__ import annotations

import random
from math import ceil
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.token_dropping.game import (
    LOCAL_CHILDREN,
    LOCAL_HAS_TOKEN,
    LOCAL_PARENTS,
    TokenDroppingInstance,
)
from repro.core.token_dropping.traversal import (
    InvalidSolutionError,
    TokenDroppingSolution,
    Traversal,
)
from repro.local_model import (
    AlgorithmFactory,
    ExecutionResult,
    ExecutionTrace,
    Inbox,
    NodeAlgorithm,
    NodeContext,
    Runner,
)

NodeId = Hashable

#: Number of LOCAL communication rounds per game round of the proposal
#: algorithm (ANNOUNCE, REQUEST, GRANT).
ROUNDS_PER_GAME_ROUND = 3

# Message kinds ---------------------------------------------------------
MSG_HAVE_TOKEN = "HAVE_TOKEN"
MSG_REQUEST = "REQUEST"
MSG_GRANT = "GRANT"
MSG_LEAVE = "LEAVE"

#: Supported tie-breaking policies for choosing among several candidates.
TIE_BREAK_POLICIES = ("min", "max", "random")


def _choose(
    candidates: Sequence[NodeId], policy: str, rng: Optional[random.Random]
) -> NodeId:
    """Pick one candidate according to the tie-breaking policy."""
    ordered = sorted(candidates, key=repr)
    if policy == "min":
        return ordered[0]
    if policy == "max":
        return ordered[-1]
    if policy == "random":
        assert rng is not None
        return ordered[rng.randrange(len(ordered))]
    raise ValueError(
        f"unknown tie-break policy {policy!r}; expected one of {TIE_BREAK_POLICIES}"
    )


class ProposalNode(NodeAlgorithm):
    """Per-node state machine implementing the proposal algorithm.

    Parameters
    ----------
    tie_break:
        How a node picks among several token-offering parents (and how an
        occupied node picks among several requesting children): ``"min"``
        (smallest identifier, the deterministic default), ``"max"``, or
        ``"random"`` (seeded per node for reproducibility).
    seed:
        Base seed for the ``"random"`` policy.
    """

    def __init__(self, node_id: NodeId, tie_break: str = "min", seed: int = 0) -> None:
        if tie_break not in TIE_BREAK_POLICIES:
            raise ValueError(
                f"unknown tie-break policy {tie_break!r}; "
                f"expected one of {TIE_BREAK_POLICIES}"
            )
        self.tie_break = tie_break
        self._rng = (
            random.Random(f"{seed}:{node_id!r}") if tie_break == "random" else None
        )

    # ------------------------------------------------------------------
    def on_start(self, ctx: NodeContext) -> None:
        local = ctx.local_input or {}
        self.parents = set(local.get(LOCAL_PARENTS, frozenset()))
        self.children = set(local.get(LOCAL_CHILDREN, frozenset()))
        self.has_token = bool(local.get(LOCAL_HAS_TOKEN, False))
        self.initially_occupied = self.has_token
        self.token: Optional[NodeId] = ctx.node_id if self.has_token else None
        self.received: List[Tuple[NodeId, NodeId]] = []
        self.passed: List[Tuple[NodeId, NodeId]] = []
        self.offers: set = set()
        self.requests: set = set()
        self._announce_phase(ctx)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        self._process_inbox(inbox)
        phase = ctx.round_number % ROUNDS_PER_GAME_ROUND
        if phase == 1:
            self._request_phase(ctx)
        elif phase == 2:
            self._grant_phase(ctx)
        else:
            self._announce_phase(ctx)

    # ------------------------------------------------------------------
    def _process_inbox(self, inbox: Inbox) -> None:
        for sender, message in inbox.items():
            kind = message[0]
            if kind == MSG_LEAVE:
                self.parents.discard(sender)
                self.children.discard(sender)
                self.offers.discard(sender)
                self.requests.discard(sender)
            elif kind == MSG_HAVE_TOKEN:
                if sender in self.parents:
                    self.offers.add(sender)
            elif kind == MSG_REQUEST:
                if sender in self.children:
                    self.requests.add(sender)
            elif kind == MSG_GRANT:
                token = message[1]
                # Receiving a token consumes the edge to the granting parent.
                self.parents.discard(sender)
                self.has_token = True
                self.token = token
                self.received.append((token, sender))

    def _request_phase(self, ctx: NodeContext) -> None:
        if self.has_token:
            return
        candidates = [p for p in self.offers if p in self.parents]
        if not candidates:
            return
        chosen = _choose(candidates, self.tie_break, self._rng)
        ctx.send(chosen, (MSG_REQUEST,))

    def _grant_phase(self, ctx: NodeContext) -> None:
        if self.has_token and self.requests:
            candidates = [c for c in self.requests if c in self.children]
            if candidates:
                chosen = _choose(candidates, self.tie_break, self._rng)
                ctx.send(chosen, (MSG_GRANT, self.token))
                self.passed.append((self.token, chosen))
                self.children.discard(chosen)
                self.has_token = False
                self.token = None
        self.requests.clear()
        self.offers.clear()

    def _announce_phase(self, ctx: NodeContext) -> None:
        self.offers.clear()
        if (self.has_token and not self.children) or (
            not self.has_token and not self.parents
        ):
            self._terminate(ctx)
            return
        if self.has_token:
            for child in self.children:
                ctx.send(child, (MSG_HAVE_TOKEN,))

    def _terminate(self, ctx: NodeContext) -> None:
        for neighbor in self.parents | self.children:
            ctx.send(neighbor, (MSG_LEAVE,))
        ctx.halt(
            {
                "initially_occupied": self.initially_occupied,
                "finally_occupied": self.has_token,
                "final_token": self.token,
                "received": tuple(self.received),
                "passed": tuple(self.passed),
            }
        )


def proposal_factory(tie_break: str = "min", seed: int = 0) -> AlgorithmFactory:
    """An :class:`AlgorithmFactory` for :class:`ProposalNode` with fixed policy.

    The factory also registers the int-array fast path
    (:func:`repro.core.token_dropping._kernels.proposal_kernel`), so a
    :class:`Runner` dispatches this algorithm to the compact round engine
    per :mod:`repro.dispatch` while reproducing the reference execution
    exactly.
    """
    if tie_break not in TIE_BREAK_POLICIES:
        raise ValueError(
            f"unknown tie-break policy {tie_break!r}; "
            f"expected one of {TIE_BREAK_POLICIES}"
        )
    from repro.core.token_dropping._kernels import proposal_kernel

    def compact_kernel(compact_network, max_rounds):
        return proposal_kernel(
            compact_network, max_rounds, tie_break=tie_break, seed=seed
        )

    return AlgorithmFactory(
        lambda node_id: ProposalNode(node_id, tie_break=tie_break, seed=seed),
        compact_kernel=compact_kernel,
    )


# ----------------------------------------------------------------------
# Solution reconstruction and the public entry point
# ----------------------------------------------------------------------
def reconstruct_solution(
    instance: TokenDroppingInstance,
    result: ExecutionResult,
) -> TokenDroppingSolution:
    """Rebuild traversals from per-node outputs of the proposal algorithm.

    Every token is tagged with its starting node, so the traversal of token
    ``t`` is recovered by following, node by node, the unique pass event
    labelled ``t`` until reaching the node that finally holds ``t``.
    """
    outputs = result.outputs
    # Index: node -> {token -> child it was passed to from this node}.
    passes: Dict[NodeId, Dict[NodeId, NodeId]] = {}
    holders: Dict[NodeId, NodeId] = {}
    for node, output in outputs.items():
        if output is None:
            raise InvalidSolutionError(
                f"node {node!r} produced no output; execution is incomplete"
            )
        passes[node] = {token: child for token, child in output["passed"]}
        if output["finally_occupied"]:
            holders[output["final_token"]] = node

    traversals: Dict[NodeId, Traversal] = {}
    for token in instance.tokens:
        path = [token]
        current = token
        visited = {token}
        while token in passes.get(current, {}):
            current = passes[current][token]
            if current in visited:
                raise InvalidSolutionError(
                    f"cyclic pass history for token {token!r} at node {current!r}"
                )
            visited.add(current)
            path.append(current)
        if holders.get(token) != current:
            raise InvalidSolutionError(
                f"token {token!r} pass history ends at {current!r} but the final "
                f"holder is {holders.get(token)!r}"
            )
        traversals[token] = Traversal(token, path)

    pass_history = {
        node: tuple(output["passed"]) for node, output in outputs.items()
    }
    return TokenDroppingSolution(
        traversals=traversals,
        pass_history=pass_history,
        communication_rounds=result.metrics.rounds,
        game_rounds=ceil(result.metrics.rounds / ROUNDS_PER_GAME_ROUND),
    )


def run_proposal_algorithm(
    instance: TokenDroppingInstance,
    *,
    tie_break: str = "min",
    seed: int = 0,
    max_rounds: Optional[int] = None,
    trace: Optional[ExecutionTrace] = None,
    backend: Optional[str] = None,
) -> TokenDroppingSolution:
    """Solve a token dropping instance with the distributed proposal algorithm.

    Parameters
    ----------
    instance:
        The game to solve.
    tie_break, seed:
        Tie-breaking policy (see :class:`ProposalNode`).
    max_rounds:
        Hard budget on LOCAL communication rounds.  Defaults to
        ``ROUNDS_PER_GAME_ROUND`` times the Theorem 4.1 budget from
        :meth:`TokenDroppingInstance.theoretical_round_bound`, so exceeding
        the theorem's bound fails loudly.
    trace:
        Optional execution trace for inspection (always runs on the
        reference scheduler).
    backend:
        Execution backend per :mod:`repro.dispatch`: ``"compact"`` forces
        the int-array round kernel, ``"dict"`` the reference per-node
        scheduler, and the default (``None``/``"auto"``) prefers the
        kernel.  Both produce identical solutions and metrics.

    Returns
    -------
    TokenDroppingSolution
        Validated against the instance is the caller's choice; use
        ``solution.validate(instance)``.
    """
    network = instance.to_network()
    if max_rounds is None:
        max_rounds = ROUNDS_PER_GAME_ROUND * instance.theoretical_round_bound()
    result = Runner(
        network,
        proposal_factory(tie_break=tie_break, seed=seed),
        max_rounds=max_rounds,
        trace=trace,
        backend=backend,
    ).run()
    return reconstruct_solution(instance, result)
