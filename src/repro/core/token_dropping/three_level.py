"""The O(Δ)-round algorithm for token dropping with three levels (Theorem 4.7).

Section 4.3 of the paper: when the nodes live on levels {0, 1, 2}, the
level-1 nodes can take the active role and shuttle tokens from level 2
down to level 0.  In every game round

* each **active and unoccupied level-1** node requests a token from a
  parent (level 2) that has a token;
* each **level-2** node that received a request passes its token to one
  requesting child;
* each **occupied level-1** node proposes its token to an unoccupied
  child (level 0);
* each **level-0** node that received proposals accepts one of them and
  thereby the offered token.

Termination: level-2 nodes terminate as soon as they are unoccupied;
level-0 nodes terminate when they are occupied or have no parents left;
level-1 nodes terminate when they are unoccupied with no parents or
occupied with no children.  Theorem 4.7 shows the whole game finishes in
O(Δ) game rounds because every round some neighbour of every still-active
level-1 node terminates.

As with the generic proposal algorithm, one game round is realised with
three LOCAL communication rounds (ANNOUNCE → ACT → RESOLVE).  Unlike the
generic algorithm the nodes use their layer index, which for this special
case is part of the promised input (the layering into {top, middle,
bottom} is exactly what the algorithm is specialised to).
"""

from __future__ import annotations

import random
from typing import Hashable, List, Optional, Tuple

from repro.core.token_dropping.game import (
    LOCAL_CHILDREN,
    LOCAL_HAS_TOKEN,
    LOCAL_LEVEL,
    LOCAL_PARENTS,
    TokenDroppingInstance,
)
from repro.core.token_dropping.proposal import (
    MSG_GRANT,
    MSG_HAVE_TOKEN,
    MSG_LEAVE,
    MSG_REQUEST,
    ROUNDS_PER_GAME_ROUND,
    TIE_BREAK_POLICIES,
    _choose,
    reconstruct_solution,
)
from repro.core.token_dropping.traversal import TokenDroppingSolution
from repro.local_model import (
    AlgorithmFactory,
    ExecutionTrace,
    Inbox,
    NodeAlgorithm,
    NodeContext,
    Runner,
)

NodeId = Hashable

# Additional message kinds used only by the three-level algorithm.
MSG_UNOCCUPIED = "UNOCCUPIED"
MSG_PROPOSE = "PROPOSE"
MSG_ACCEPT = "ACCEPT"

#: Maximum level supported by the specialised algorithm (levels 0, 1, 2).
MAX_SUPPORTED_LEVEL = 2


class UnsupportedHeightError(ValueError):
    """Raised when the three-level algorithm is given a taller game."""


class ThreeLevelNode(NodeAlgorithm):
    """Per-node state machine for the three-level algorithm."""

    def __init__(self, node_id: NodeId, tie_break: str = "min", seed: int = 0) -> None:
        if tie_break not in TIE_BREAK_POLICIES:
            raise ValueError(
                f"unknown tie-break policy {tie_break!r}; "
                f"expected one of {TIE_BREAK_POLICIES}"
            )
        self.tie_break = tie_break
        self._rng = (
            random.Random(f"{seed}:{node_id!r}") if tie_break == "random" else None
        )

    # ------------------------------------------------------------------
    def on_start(self, ctx: NodeContext) -> None:
        local = ctx.local_input or {}
        self.level = int(local.get(LOCAL_LEVEL, 0))
        self.parents = set(local.get(LOCAL_PARENTS, frozenset()))
        self.children = set(local.get(LOCAL_CHILDREN, frozenset()))
        self.has_token = bool(local.get(LOCAL_HAS_TOKEN, False))
        self.initially_occupied = self.has_token
        self.token: Optional[NodeId] = ctx.node_id if self.has_token else None
        self.received: List[Tuple[NodeId, NodeId]] = []
        self.passed: List[Tuple[NodeId, NodeId]] = []
        self.offers: set = set()
        self.free_children: set = set()
        self.requests: set = set()
        self.proposals: dict = {}
        self.pending_proposal: Optional[NodeId] = None
        self._announce_phase(ctx)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        self._process_inbox(inbox)
        phase = ctx.round_number % ROUNDS_PER_GAME_ROUND
        if phase == 1:
            self._act_phase(ctx)
        elif phase == 2:
            self._resolve_phase(ctx)
        else:
            self._announce_phase(ctx)

    # ------------------------------------------------------------------
    def _process_inbox(self, inbox: Inbox) -> None:
        for sender, message in inbox.items():
            kind = message[0]
            if kind == MSG_LEAVE:
                self.parents.discard(sender)
                self.children.discard(sender)
                self.offers.discard(sender)
                self.free_children.discard(sender)
                self.requests.discard(sender)
                self.proposals.pop(sender, None)
            elif kind == MSG_HAVE_TOKEN:
                if sender in self.parents:
                    self.offers.add(sender)
            elif kind == MSG_UNOCCUPIED:
                if sender in self.children:
                    self.free_children.add(sender)
            elif kind == MSG_REQUEST:
                if sender in self.children:
                    self.requests.add(sender)
            elif kind == MSG_PROPOSE:
                if sender in self.parents:
                    self.proposals[sender] = message[1]
            elif kind == MSG_GRANT:
                self.parents.discard(sender)
                self.has_token = True
                self.token = message[1]
                self.received.append((message[1], sender))
            elif kind == MSG_ACCEPT:
                # Our earlier proposal was accepted: the token is gone and
                # the connecting edge is consumed.
                if self.has_token and sender in self.children:
                    self.passed.append((self.token, sender))
                    self.children.discard(sender)
                    self.has_token = False
                    self.token = None
                self.pending_proposal = None

    # Phase 0: announcements + termination checks --------------------------
    def _announce_phase(self, ctx: NodeContext) -> None:
        self.offers.clear()
        self.free_children.clear()
        if self._should_terminate():
            self._terminate(ctx)
            return
        if self.level == 2 and self.has_token:
            for child in self.children:
                ctx.send(child, (MSG_HAVE_TOKEN,))
        elif self.level == 0 and not self.has_token:
            for parent in self.parents:
                ctx.send(parent, (MSG_UNOCCUPIED,))

    def _should_terminate(self) -> bool:
        if self.level == 2:
            # The paper removes level-2 nodes once unoccupied; an occupied
            # level-2 node whose children have all terminated can likewise
            # never act again, so it also halts (it keeps its token).
            return (not self.has_token) or (not self.children)
        if self.level == 0:
            return self.has_token or not self.parents
        # level 1
        return (not self.has_token and not self.parents) or (
            self.has_token and not self.children
        )

    # Phase 1: level-1 nodes act ------------------------------------------
    def _act_phase(self, ctx: NodeContext) -> None:
        if self.level != 1:
            return
        if not self.has_token:
            candidates = [p for p in self.offers if p in self.parents]
            if candidates:
                chosen = _choose(candidates, self.tie_break, self._rng)
                ctx.send(chosen, (MSG_REQUEST,))
        else:
            candidates = [c for c in self.free_children if c in self.children]
            if candidates:
                chosen = _choose(candidates, self.tie_break, self._rng)
                ctx.send(chosen, (MSG_PROPOSE, self.token))
                self.pending_proposal = chosen

    # Phase 2: level-2 grants, level-0 accepts -----------------------------
    def _resolve_phase(self, ctx: NodeContext) -> None:
        if self.level == 2 and self.has_token and self.requests:
            candidates = [c for c in self.requests if c in self.children]
            if candidates:
                chosen = _choose(candidates, self.tie_break, self._rng)
                ctx.send(chosen, (MSG_GRANT, self.token))
                self.passed.append((self.token, chosen))
                self.children.discard(chosen)
                self.has_token = False
                self.token = None
        elif self.level == 0 and not self.has_token and self.proposals:
            candidates = [p for p in self.proposals if p in self.parents]
            if candidates:
                chosen = _choose(candidates, self.tie_break, self._rng)
                token = self.proposals[chosen]
                ctx.send(chosen, (MSG_ACCEPT,))
                self.parents.discard(chosen)
                self.has_token = True
                self.token = token
                self.received.append((token, chosen))
        self.requests.clear()
        self.proposals.clear()

    # ------------------------------------------------------------------
    def _terminate(self, ctx: NodeContext) -> None:
        for neighbor in self.parents | self.children:
            ctx.send(neighbor, (MSG_LEAVE,))
        ctx.halt(
            {
                "initially_occupied": self.initially_occupied,
                "finally_occupied": self.has_token,
                "final_token": self.token,
                "received": tuple(self.received),
                "passed": tuple(self.passed),
            }
        )


def three_level_factory(tie_break: str = "min", seed: int = 0) -> AlgorithmFactory:
    """An :class:`AlgorithmFactory` for :class:`ThreeLevelNode`.

    Registers the int-array fast path
    (:func:`repro.core.token_dropping._kernels.three_level_kernel`) so the
    :class:`Runner` can dispatch to the compact round engine per
    :mod:`repro.dispatch`.
    """
    if tie_break not in TIE_BREAK_POLICIES:
        raise ValueError(
            f"unknown tie-break policy {tie_break!r}; "
            f"expected one of {TIE_BREAK_POLICIES}"
        )
    from repro.core.token_dropping._kernels import three_level_kernel

    def compact_kernel(compact_network, max_rounds):
        return three_level_kernel(
            compact_network, max_rounds, tie_break=tie_break, seed=seed
        )

    return AlgorithmFactory(
        lambda node_id: ThreeLevelNode(node_id, tie_break=tie_break, seed=seed),
        compact_kernel=compact_kernel,
    )


def theoretical_three_level_bound(
    instance: TokenDroppingInstance, constant: int = 8
) -> int:
    """A concrete O(Δ) game-round budget for Theorem 4.7."""
    return constant * (instance.max_degree + 1) + constant


def run_three_level_algorithm(
    instance: TokenDroppingInstance,
    *,
    tie_break: str = "min",
    seed: int = 0,
    max_rounds: Optional[int] = None,
    trace: Optional[ExecutionTrace] = None,
    backend: Optional[str] = None,
) -> TokenDroppingSolution:
    """Solve a height-≤-2 (three-level) token dropping instance in O(Δ) rounds.

    ``backend`` selects the execution path per :mod:`repro.dispatch`
    (compact int-array kernel vs. reference scheduler); both produce
    identical solutions and metrics.

    Raises
    ------
    UnsupportedHeightError
        If the instance uses a level above 2; use the generic proposal
        algorithm for taller games.
    """
    if instance.height > MAX_SUPPORTED_LEVEL:
        raise UnsupportedHeightError(
            f"the three-level algorithm supports levels 0..{MAX_SUPPORTED_LEVEL}, "
            f"got an instance of height {instance.height}"
        )
    network = instance.to_network(include_levels=True)
    if max_rounds is None:
        max_rounds = ROUNDS_PER_GAME_ROUND * theoretical_three_level_bound(instance)
    result = Runner(
        network,
        three_level_factory(tie_break=tie_break, seed=seed),
        max_rounds=max_rounds,
        trace=trace,
        backend=backend,
    ).run()
    solution = reconstruct_solution(instance, result)
    return solution
