"""Centralized sequential baselines for the token dropping game.

Section 4 of the paper notes "there is a trivial centralized sequential
algorithm for solving the token dropping problem: repeatedly pick any
token that can be moved downwards and move it by one step."  This module
implements that baseline with several pick orders; it is used

* as a correctness cross-check for the distributed algorithms (both must
  produce valid solutions on the same instances),
* as the reference point in the ablation benchmark on move-selection
  policies, and
* to measure the *sequential* work (total single-step moves) that the
  distributed algorithms parallelise.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.core.token_dropping.game import TokenDroppingInstance
from repro.core.token_dropping.traversal import TokenDroppingSolution, Traversal
from repro.dispatch import resolve_backend

NodeId = Hashable

#: Supported centralized move-selection policies.
GREEDY_ORDERS = ("first", "random", "highest_level", "lowest_level")


def greedy_token_dropping(
    instance: TokenDroppingInstance,
    *,
    order: str = "first",
    seed: int = 0,
    backend: Optional[str] = None,
) -> TokenDroppingSolution:
    """Solve an instance by repeatedly moving one movable token a single step.

    Parameters
    ----------
    instance:
        The game to solve.
    order:
        Which movable token to move next:

        * ``"first"`` -- the deterministic default: smallest node (by repr)
          holding a movable token;
        * ``"random"`` -- uniform over movable tokens (seeded);
        * ``"highest_level"`` -- prefer tokens on high levels (they have
          the longest way down);
        * ``"lowest_level"`` -- prefer tokens near the bottom.
    seed:
        Seed for the ``"random"`` policy.
    backend:
        Execution backend per :mod:`repro.dispatch`: ``"compact"`` (the
        ``auto`` default — this baseline is iterative, so the one-time
        interning amortizes) runs the int-array kernel, ``"dict"`` the
        reference loop below.  Both produce identical solutions.

    Returns
    -------
    TokenDroppingSolution
        With ``game_rounds=None`` (the baseline is sequential); the number
        of sequential single-step moves is ``solution.total_moves()``.
    """
    if order not in GREEDY_ORDERS:
        raise ValueError(f"unknown order {order!r}; expected one of {GREEDY_ORDERS}")
    if resolve_backend(backend, auto="compact") == "compact":
        from repro.core.token_dropping._kernels import greedy_kernel

        return greedy_kernel(instance, order=order, seed=seed)
    rng = random.Random(seed)
    graph = instance.graph

    # position of each token (keyed by the token's original node) and the
    # reverse index of which token occupies a node.
    position: Dict[NodeId, NodeId] = {token: token for token in instance.tokens}
    occupant: Dict[NodeId, NodeId] = {token: token for token in instance.tokens}
    paths: Dict[NodeId, List[NodeId]] = {token: [token] for token in instance.tokens}
    pass_history: Dict[NodeId, List[Tuple[NodeId, NodeId]]] = {}
    consumed: Set[Tuple[NodeId, NodeId]] = set()

    def movable_children(node: NodeId) -> List[NodeId]:
        """Unoccupied children reachable over unconsumed edges."""
        return [
            child
            for child in graph.children(node)
            if child not in occupant and (child, node) not in consumed
        ]

    def movable_tokens() -> List[NodeId]:
        return [
            token for token, node in position.items() if movable_children(node)
        ]

    while True:
        candidates = movable_tokens()
        if not candidates:
            break
        if order == "first":
            token = sorted(candidates, key=repr)[0]
        elif order == "random":
            token = candidates[rng.randrange(len(candidates))]
        elif order == "highest_level":
            token = max(candidates, key=lambda t: (graph.level(position[t]), repr(t)))
        else:  # lowest_level
            token = min(candidates, key=lambda t: (graph.level(position[t]), repr(t)))

        node = position[token]
        children = sorted(movable_children(node), key=repr)
        child = (
            children[0]
            if order != "random"
            else children[rng.randrange(len(children))]
        )

        consumed.add((child, node))
        del occupant[node]
        occupant[child] = token
        position[token] = child
        paths[token].append(child)
        pass_history.setdefault(node, []).append((token, child))

    traversals = {token: Traversal(token, path) for token, path in paths.items()}
    return TokenDroppingSolution(
        traversals=traversals,
        pass_history={node: tuple(events) for node, events in pass_history.items()},
        game_rounds=None,
        communication_rounds=None,
    )


def count_sequential_moves(solution: TokenDroppingSolution) -> int:
    """Number of single-step moves a sequential schedule of this solution uses."""
    return solution.total_moves()


def compare_destinations(
    a: TokenDroppingSolution, b: TokenDroppingSolution
) -> Dict[str, int]:
    """Summarise how two solutions differ (used in ablation reports).

    Returns a dict with the number of tokens whose destination agrees,
    differs, and the total move counts of each solution.  Token dropping
    has many valid solutions, so this is a descriptive comparison, not a
    correctness check.
    """
    agree = sum(
        1
        for token, traversal in a.traversals.items()
        if token in b.traversals
        and b.traversals[token].destination == traversal.destination
    )
    return {
        "tokens": len(a.traversals),
        "same_destination": agree,
        "different_destination": len(a.traversals) - agree,
        "moves_a": a.total_moves(),
        "moves_b": b.total_moves(),
    }


def exhaustive_is_stuck(
    instance: TokenDroppingInstance, solution: TokenDroppingSolution
) -> bool:
    """Independent check that the final configuration is stuck.

    Recomputes, from scratch, whether any token could still move given the
    consumed edges and final occupancy -- a redundant (and intentionally
    differently-coded) version of the maximality rule used in tests.
    """
    occupied = solution.destinations
    consumed = solution.consumed_edges()
    graph = instance.graph
    for node in occupied:
        for child in graph.children(node):
            if child in occupied:
                continue
            if (child, node) in consumed:
                continue
            return False
    return True
