"""Token traversals, solutions, and the three output rules.

The output of the token dropping game (Section 4, "Objective") assigns to
every token ``s`` a *traversal* ``p_s = (v_1, ..., v_d)`` from its original
node to its destination, moving one level down at every step.  A solution
is correct iff

1. the traversals are edge-disjoint ("each edge is used at most once"),
2. destinations are unique, and
3. every traversal is *maximal*: if ``v`` is the destination of a
   traversal, then each edge from a child ``u`` to ``v`` is either consumed
   by another traversal or ``u`` is itself the destination of another
   traversal (i.e. ``u`` ends up occupied).

:class:`TokenDroppingSolution` stores the traversals (one per token,
stationary tokens included as length-1 traversals) plus, when produced by
the proposal algorithm, the per-node *pass history* needed to compute the
tails and extended traversals of Definition 4.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.core.token_dropping.game import TokenDroppingInstance

NodeId = Hashable
#: A (child, parent) pair, matching :class:`repro.graphs.layered.LayeredGraph`.
DirectedEdge = Tuple[NodeId, NodeId]


class InvalidSolutionError(ValueError):
    """Raised when a proposed solution violates the game's output rules."""


@dataclass(frozen=True)
class Traversal:
    """The path of one token from its original node to its destination.

    ``path[0]`` is the node the token started on and ``path[-1]`` is its
    destination; consecutive nodes are (parent, child) pairs, i.e. the
    token moves down one level per step.  A stationary token has a path of
    length one.
    """

    token: NodeId
    path: Tuple[NodeId, ...]

    def __init__(self, token: NodeId, path: Sequence[NodeId]) -> None:
        path_tuple = tuple(path)
        if not path_tuple:
            raise InvalidSolutionError(
                f"traversal of token {token!r} has an empty path"
            )
        if path_tuple[0] != token:
            raise InvalidSolutionError(
                f"traversal of token {token!r} must start at the token's original "
                f"node, got {path_tuple[0]!r}"
            )
        object.__setattr__(self, "token", token)
        object.__setattr__(self, "path", path_tuple)

    @property
    def source(self) -> NodeId:
        """The node the token started on."""
        return self.path[0]

    @property
    def destination(self) -> NodeId:
        """The node the token ends on."""
        return self.path[-1]

    @property
    def length(self) -> int:
        """Number of edges traversed (0 for a stationary token)."""
        return len(self.path) - 1

    def edges_used(self) -> Tuple[DirectedEdge, ...]:
        """The (child, parent) edges consumed by this traversal, in order."""
        return tuple(
            (self.path[i + 1], self.path[i]) for i in range(len(self.path) - 1)
        )

    def __iter__(self):
        return iter(self.path)


@dataclass(frozen=True)
class ValidationReport:
    """Result of checking a solution against the three output rules."""

    valid: bool
    violations: Tuple[str, ...] = ()

    def raise_if_invalid(self) -> None:
        """Raise :class:`InvalidSolutionError` when the solution is invalid."""
        if not self.valid:
            raise InvalidSolutionError("; ".join(self.violations))


@dataclass(frozen=True)
class TokenDroppingSolution:
    """A full solution: one traversal per token, plus optional run metadata.

    Attributes
    ----------
    traversals:
        Mapping from token identifier (its original node) to its
        :class:`Traversal`.
    pass_history:
        For algorithm-produced solutions: for every node, the ordered list
        of ``(token, child)`` passes it performed.  Needed to compute the
        tails of Definition 4.3; empty for solutions built by hand.
    game_rounds:
        Number of *game* rounds the producing algorithm needed (each game
        round of the proposal algorithm corresponds to a constant number
        of communication rounds); ``None`` for hand-built solutions.
    communication_rounds:
        Number of raw LOCAL-model communication rounds; ``None`` for
        hand-built or centralized solutions.
    """

    traversals: Mapping[NodeId, Traversal]
    pass_history: Mapping[NodeId, Tuple[Tuple[NodeId, NodeId], ...]] = field(
        default_factory=dict
    )
    game_rounds: Optional[int] = None
    communication_rounds: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def destinations(self) -> FrozenSet[NodeId]:
        """Final positions of all tokens."""
        return frozenset(t.destination for t in self.traversals.values())

    def consumed_edges(self) -> FrozenSet[DirectedEdge]:
        """All (child, parent) edges consumed by some traversal."""
        edges: List[DirectedEdge] = []
        for traversal in self.traversals.values():
            edges.extend(traversal.edges_used())
        return frozenset(edges)

    def total_moves(self) -> int:
        """Total number of single-step token moves across all traversals."""
        return sum(t.length for t in self.traversals.values())

    def traversal_of(self, token: NodeId) -> Traversal:
        """The traversal of a specific token (keyed by its original node)."""
        return self.traversals[token]

    # ------------------------------------------------------------------
    def validate(self, instance: TokenDroppingInstance) -> ValidationReport:
        """Check this solution against the instance and the three rules."""
        violations: List[str] = []
        graph = instance.graph

        # One traversal per token, keyed by its starting node.
        traversal_tokens = set(self.traversals)
        if traversal_tokens != set(instance.tokens):
            missing = set(instance.tokens) - traversal_tokens
            extra = traversal_tokens - set(instance.tokens)
            if missing:
                violations.append(
                    f"missing traversal(s) for token(s) {sorted(map(repr, missing))}"
                )
            if extra:
                violations.append(
                    f"traversal(s) for non-existent token(s) {sorted(map(repr, extra))}"
                )

        # Path validity: every step goes from a node to one of its children.
        for token, traversal in self.traversals.items():
            if traversal.source != token:
                violations.append(
                    f"traversal keyed by {token!r} starts at {traversal.source!r}"
                )
            for parent, child in zip(traversal.path, traversal.path[1:]):
                if parent not in graph.levels or child not in graph.levels:
                    violations.append(
                        f"traversal of {token!r} visits unknown node(s) "
                        f"{parent!r} -> {child!r}"
                    )
                    continue
                if (child, parent) not in graph.edges:
                    violations.append(
                        f"traversal of {token!r} uses non-edge {parent!r} -> {child!r}"
                    )

        # Rule 1: edge-disjointness.
        seen_edges: Dict[DirectedEdge, NodeId] = {}
        for token, traversal in self.traversals.items():
            for edge in traversal.edges_used():
                if edge in seen_edges:
                    violations.append(
                        f"edge {edge!r} used by tokens {seen_edges[edge]!r} "
                        f"and {token!r}"
                    )
                else:
                    seen_edges[edge] = token

        # Rule 2: unique destinations.
        seen_destinations: Dict[NodeId, NodeId] = {}
        for token, traversal in self.traversals.items():
            destination = traversal.destination
            if destination in seen_destinations:
                violations.append(
                    f"tokens {seen_destinations[destination]!r} and {token!r} share "
                    f"destination {destination!r}"
                )
            else:
                seen_destinations[destination] = token

        # Rule 3: maximality.  For every destination v, each edge (u, v)
        # from a child u must be consumed or u must be occupied at the end.
        consumed = set(seen_edges)
        occupied = set(seen_destinations)
        for token, traversal in self.traversals.items():
            destination = traversal.destination
            if destination not in graph.levels:
                continue
            for child in graph.children(destination):
                if (child, destination) in consumed:
                    continue
                if child in occupied:
                    continue
                violations.append(
                    f"traversal of token {token!r} is not maximal: it ends at "
                    f"{destination!r} but child {child!r} is unoccupied and edge "
                    f"({child!r}, {destination!r}) is unused"
                )

        return ValidationReport(valid=not violations, violations=tuple(violations))

    # ------------------------------------------------------------------
    # Tails and extended traversals (Definition 4.3)
    # ------------------------------------------------------------------
    def tail_of(self, token: NodeId) -> Tuple[NodeId, ...]:
        """The tail of the token's traversal, per Definition 4.3.

        Starting at the destination ``v_d``, follow, as long as the current
        node passed at least one token down, the edge of the **last** token
        it passed.  Requires ``pass_history``; for hand-built solutions the
        tail is just ``(destination,)``.
        """
        traversal = self.traversals[token]
        tail: List[NodeId] = [traversal.destination]
        current = traversal.destination
        visited = {current}
        while True:
            history = self.pass_history.get(current, ())
            if not history:
                break
            _, last_child = history[-1]
            if last_child in visited:
                # Defensive: pass histories of a correct execution never
                # revisit a node because every pass moves strictly down.
                break
            tail.append(last_child)
            visited.add(last_child)
            current = last_child
        return tuple(tail)

    def extended_traversal(self, token: NodeId) -> Tuple[NodeId, ...]:
        """Concatenation of the traversal and its tail (Definition 4.3)."""
        traversal = self.traversals[token]
        tail = self.tail_of(token)
        # tail[0] == destination == traversal.path[-1]; avoid duplicating it.
        return traversal.path + tail[1:]


def solution_from_paths(
    paths: Mapping[NodeId, Sequence[NodeId]],
) -> TokenDroppingSolution:
    """Build a solution from raw token → path mappings (for tests/examples)."""
    traversals = {token: Traversal(token, path) for token, path in paths.items()}
    return TokenDroppingSolution(traversals=traversals)


def final_occupancy(
    instance: TokenDroppingInstance, solution: TokenDroppingSolution
) -> FrozenSet[NodeId]:
    """The set of occupied nodes after the game ends (the destinations)."""
    del instance  # kept for signature symmetry with validators
    return solution.destinations
