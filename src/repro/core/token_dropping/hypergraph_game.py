"""Token dropping on hypergraphs (Section 7.1, Theorem 7.1).

The generalisation replaces graph edges by *oriented hyperedges*: every
hyperedge ``e = {v_1, ..., v_i}`` has one distinguished endpoint, its
*head*, and the level constraint ``ℓ(head) = min ℓ(other endpoints) + 1``.
Within a hyperedge the head is the *parent* of every endpoint one level
below it (its *children* in that hyperedge).  A token can only be passed
by the head of a hyperedge to one of its children in that hyperedge, and
passing a token consumes the entire hyperedge.

The proposal strategy carries over verbatim: unoccupied nodes propose to a
parent with a token, occupied nodes pass a token to a child that made a
proposal.  Theorem 7.1: this finishes in ``O(L · S²)`` rounds where ``S``
is the maximum vertex degree.

Implementation note
-------------------
The rank-2 algorithms run as genuine LOCAL node programs
(:mod:`repro.core.token_dropping.proposal`).  In the hypergraph setting a
head and its children are not necessarily adjacent in the communication
network -- in the stable assignment application they communicate through
the customer node in the middle, which only costs a constant factor.  The
reproduction therefore executes the hypergraph proposal strategy with a
synchronous *game-round* engine: every round, all proposals and passes are
computed from information that is local to the respective node (its own
occupancy, its incident hyperedges, and the occupancy of their heads),
exactly one hop (plus the relay) away.  The engine reports game rounds,
which is what Theorem 7.1 bounds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.core.token_dropping.game import TokenDroppingInstance
from repro.graphs.hypergraph import Hypergraph

NodeId = Hashable
EdgeId = Hashable


class InvalidHypergraphInstanceError(ValueError):
    """Raised when a hypergraph token dropping instance is malformed."""


class InvalidHypergraphSolutionError(ValueError):
    """Raised when a hypergraph token dropping solution breaks the rules."""


class HypergraphRoundLimitExceeded(RuntimeError):
    """The engine exceeded its game-round budget (indicates a bug)."""


@dataclass(frozen=True)
class HypergraphTokenDroppingInstance:
    """An input to the hypergraph token dropping game.

    Parameters
    ----------
    hypergraph:
        The hypergraph; every hyperedge must have rank at least 2 (a
        rank-1 hyperedge has no children and can never carry a token).
    levels:
        Level of every vertex (non-negative integers).
    heads:
        The head vertex of every hyperedge; must satisfy
        ``level(head) == min(level of the other endpoints) + 1``.
    tokens:
        Vertices initially holding a token (at most one each).
    """

    hypergraph: Hypergraph
    levels: Mapping[NodeId, int]
    heads: Mapping[EdgeId, NodeId]
    tokens: FrozenSet[NodeId]

    def __init__(
        self,
        hypergraph: Hypergraph,
        levels: Mapping[NodeId, int],
        heads: Mapping[EdgeId, NodeId],
        tokens: Iterable[NodeId],
    ) -> None:
        levels_dict = dict(levels)
        heads_dict = dict(heads)
        token_set = frozenset(tokens)

        missing_levels = set(hypergraph.vertices) - set(levels_dict)
        if missing_levels:
            raise InvalidHypergraphInstanceError(
                f"missing level for vertex/vertices {sorted(map(repr, missing_levels))}"
            )
        for vertex, level in levels_dict.items():
            if not isinstance(level, int) or level < 0:
                raise InvalidHypergraphInstanceError(
                    f"level of {vertex!r} must be a non-negative integer, got {level!r}"
                )

        for edge_id in hypergraph.hyperedges:
            members = hypergraph.members(edge_id)
            if len(members) < 2:
                raise InvalidHypergraphInstanceError(
                    f"hyperedge {edge_id!r} has rank {len(members)} < 2"
                )
            if edge_id not in heads_dict:
                raise InvalidHypergraphInstanceError(
                    f"hyperedge {edge_id!r} has no head"
                )
            head = heads_dict[edge_id]
            if head not in members:
                raise InvalidHypergraphInstanceError(
                    f"head {head!r} of hyperedge {edge_id!r} is not one of its "
                    "endpoints"
                )
            others = [levels_dict[v] for v in members if v != head]
            if levels_dict[head] != min(others) + 1:
                raise InvalidHypergraphInstanceError(
                    f"hyperedge {edge_id!r}: level(head)={levels_dict[head]} must "
                    f"equal min(level of other endpoints)+1={min(others) + 1}"
                )
        extra_heads = set(heads_dict) - set(hypergraph.hyperedges)
        if extra_heads:
            raise InvalidHypergraphInstanceError(
                f"heads given for unknown hyperedge(s) {sorted(map(repr, extra_heads))}"
            )
        unknown_tokens = token_set - set(hypergraph.vertices)
        if unknown_tokens:
            raise InvalidHypergraphInstanceError(
                "token(s) on unknown vertex/vertices "
                f"{sorted(map(repr, unknown_tokens))}"
            )

        object.__setattr__(self, "hypergraph", hypergraph)
        object.__setattr__(self, "levels", levels_dict)
        object.__setattr__(self, "heads", heads_dict)
        object.__setattr__(self, "tokens", token_set)

    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """L, the maximum vertex level."""
        return max(self.levels.values(), default=0)

    @property
    def max_vertex_degree(self) -> int:
        """S, the maximum number of hyperedges incident to one vertex."""
        return self.hypergraph.max_vertex_degree()

    @property
    def max_rank(self) -> int:
        """C, the maximum hyperedge rank."""
        return self.hypergraph.max_rank()

    def children_in_edge(self, vertex: NodeId, edge_id: EdgeId) -> Tuple[NodeId, ...]:
        """Children of ``vertex`` in ``edge_id`` (empty unless vertex is the head)."""
        if self.heads[edge_id] != vertex:
            return ()
        level = self.levels[vertex]
        return tuple(
            sorted(
                (
                    u
                    for u in self.hypergraph.members(edge_id)
                    if u != vertex and self.levels[u] == level - 1
                ),
                key=repr,
            )
        )

    def parent_in_edge(self, vertex: NodeId, edge_id: EdgeId) -> Optional[NodeId]:
        """The parent of ``vertex`` within ``edge_id`` (None if there is none)."""
        head = self.heads[edge_id]
        if head == vertex:
            return None
        if self.levels[head] == self.levels[vertex] + 1:
            return head
        return None

    def theoretical_round_bound(self, constant: int = 8) -> int:
        """A concrete ``O(L · S²)`` game-round budget (Theorem 7.1)."""
        return (
            constant * (self.height + 1) * (self.max_vertex_degree + 1) ** 2
            + constant
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_rank2_instance(
        cls, instance: TokenDroppingInstance
    ) -> "HypergraphTokenDroppingInstance":
        """View an ordinary (rank-2) token dropping instance as a hypergraph game.

        Every (child, parent) edge becomes a rank-2 hyperedge with the
        parent as its head.  Used for cross-validation between the graph
        and hypergraph engines.
        """
        graph = instance.graph
        hyperedges = {}
        heads = {}
        for child, parent in sorted(graph.edges, key=repr):
            edge_id = ("e", child, parent)
            hyperedges[edge_id] = (child, parent)
            heads[edge_id] = parent
        hypergraph = Hypergraph(vertices=graph.nodes, hyperedges=hyperedges)
        return cls(
            hypergraph=hypergraph,
            levels=dict(graph.levels),
            heads=heads,
            tokens=instance.tokens,
        )


@dataclass(frozen=True)
class HyperTraversal:
    """One token's path through the hypergraph game.

    ``path[i+1]`` was reached from ``path[i]`` through ``hyperedges[i]``.
    """

    token: NodeId
    path: Tuple[NodeId, ...]
    hyperedges: Tuple[EdgeId, ...]

    def __post_init__(self) -> None:
        if not self.path:
            raise InvalidHypergraphSolutionError(
                f"traversal of token {self.token!r} has an empty path"
            )
        if len(self.hyperedges) != len(self.path) - 1:
            raise InvalidHypergraphSolutionError(
                f"traversal of token {self.token!r} has {len(self.path)} nodes but "
                f"{len(self.hyperedges)} hyperedges"
            )

    @property
    def source(self) -> NodeId:
        return self.path[0]

    @property
    def destination(self) -> NodeId:
        return self.path[-1]

    @property
    def length(self) -> int:
        return len(self.path) - 1


@dataclass(frozen=True)
class HypergraphTokenDroppingSolution:
    """Solution of a hypergraph token dropping game."""

    traversals: Mapping[NodeId, HyperTraversal]
    game_rounds: Optional[int] = None

    @property
    def destinations(self) -> FrozenSet[NodeId]:
        return frozenset(t.destination for t in self.traversals.values())

    def consumed_hyperedges(self) -> FrozenSet[EdgeId]:
        edges: List[EdgeId] = []
        for traversal in self.traversals.values():
            edges.extend(traversal.hyperedges)
        return frozenset(edges)

    def total_moves(self) -> int:
        return sum(t.length for t in self.traversals.values())

    # ------------------------------------------------------------------
    def validate(self, instance: HypergraphTokenDroppingInstance) -> List[str]:
        """Return the list of rule violations (empty = valid)."""
        violations: List[str] = []
        if set(self.traversals) != set(instance.tokens):
            violations.append(
                "traversals do not cover exactly the initial tokens: "
                f"{sorted(map(repr, set(self.traversals) ^ set(instance.tokens)))}"
            )

        # Path validity + rule 1 (hyperedge-disjointness).
        used: Dict[EdgeId, NodeId] = {}
        for token, traversal in self.traversals.items():
            if traversal.source != token:
                violations.append(
                    f"traversal of {token!r} starts at {traversal.source!r}"
                )
            for i, edge_id in enumerate(traversal.hyperedges):
                parent, child = traversal.path[i], traversal.path[i + 1]
                members = instance.hypergraph.members(edge_id)
                if parent not in members or child not in members:
                    violations.append(
                        f"traversal of {token!r}: step {parent!r} -> {child!r} is not "
                        f"inside hyperedge {edge_id!r}"
                    )
                    continue
                if instance.heads[edge_id] != parent:
                    violations.append(
                        f"traversal of {token!r}: {parent!r} is not the head of "
                        f"{edge_id!r}"
                    )
                if instance.levels[child] != instance.levels[parent] - 1:
                    violations.append(
                        f"traversal of {token!r}: step {parent!r} -> {child!r} does "
                        "not go down exactly one level"
                    )
                if edge_id in used:
                    violations.append(
                        f"hyperedge {edge_id!r} used by {used[edge_id]!r} and {token!r}"
                    )
                else:
                    used[edge_id] = token

        # Rule 2: unique destinations.
        seen: Dict[NodeId, NodeId] = {}
        for token, traversal in self.traversals.items():
            if traversal.destination in seen:
                violations.append(
                    f"tokens {seen[traversal.destination]!r} and {token!r} share "
                    f"destination {traversal.destination!r}"
                )
            else:
                seen[traversal.destination] = token

        # Rule 3: maximality.
        occupied = set(seen)
        consumed = set(used)
        for destination in occupied:
            for edge_id in instance.hypergraph.edges_at(destination):
                if instance.heads[edge_id] != destination:
                    continue
                if edge_id in consumed:
                    continue
                for child in instance.children_in_edge(destination, edge_id):
                    if child not in occupied:
                        violations.append(
                            f"not maximal: destination {destination!r} could still "
                            f"pass its token to {child!r} through hyperedge "
                            f"{edge_id!r}"
                        )
        return violations


def run_hypergraph_proposal(
    instance: HypergraphTokenDroppingInstance,
    *,
    tie_break: str = "min",
    seed: int = 0,
    max_rounds: Optional[int] = None,
) -> HypergraphTokenDroppingSolution:
    """Run the hypergraph proposal strategy (Theorem 7.1) to completion.

    Every game round, each unoccupied vertex with at least one occupied
    parent (over a still-unconsumed hyperedge) proposes to one such parent;
    each occupied vertex with proposals passes its token to one proposer,
    consuming that hyperedge.  Stops when no token can move.

    Raises
    ------
    HypergraphRoundLimitExceeded
        If the game is not stuck after ``max_rounds`` rounds (defaults to
        the Theorem 7.1 budget, so the bound is a checked invariant).
    """
    if max_rounds is None:
        max_rounds = instance.theoretical_round_bound()
    rng = random.Random(seed)

    def choose(options: List, key=repr):
        ordered = sorted(options, key=key)
        if tie_break == "min":
            return ordered[0]
        if tie_break == "max":
            return ordered[-1]
        if tie_break == "random":
            return ordered[rng.randrange(len(ordered))]
        raise ValueError(f"unknown tie-break policy {tie_break!r}")

    occupant: Dict[NodeId, NodeId] = {v: v for v in instance.tokens}
    live: Set[EdgeId] = set(instance.hypergraph.hyperedges)
    paths: Dict[NodeId, List[NodeId]] = {t: [t] for t in instance.tokens}
    path_edges: Dict[NodeId, List[EdgeId]] = {t: [] for t in instance.tokens}

    rounds = 0
    while True:
        # Collect proposals: unoccupied vertex -> one occupied parent.
        proposals: Dict[NodeId, List[Tuple[NodeId, EdgeId]]] = {}
        for vertex in instance.hypergraph.vertices:
            if vertex in occupant:
                continue
            options: List[Tuple[NodeId, EdgeId]] = []
            for edge_id in instance.hypergraph.edges_at(vertex):
                if edge_id not in live:
                    continue
                parent = instance.parent_in_edge(vertex, edge_id)
                if parent is not None and parent in occupant:
                    options.append((parent, edge_id))
            if options:
                parent, edge_id = choose(options)
                proposals.setdefault(parent, []).append((vertex, edge_id))

        if not proposals:
            break
        rounds += 1
        if rounds > max_rounds:
            raise HypergraphRoundLimitExceeded(
                f"hypergraph proposal engine exceeded {max_rounds} game rounds"
            )

        for parent, requests in proposals.items():
            if parent not in occupant:
                continue  # already passed its token earlier this round? cannot happen
            child, edge_id = choose(requests)
            token = occupant.pop(parent)
            occupant[child] = token
            live.discard(edge_id)
            paths[token].append(child)
            path_edges[token].append(edge_id)

    traversals = {
        token: HyperTraversal(token, tuple(paths[token]), tuple(path_edges[token]))
        for token in instance.tokens
    }
    return HypergraphTokenDroppingSolution(traversals=traversals, game_rounds=rounds)
