"""Int-array fast-path kernels for the token dropping game.

These are the compact counterparts of the three token dropping solvers:

* :func:`greedy_kernel` — the centralized sequential baseline
  (:func:`~repro.core.token_dropping.greedy.greedy_token_dropping`);
* :func:`proposal_kernel` — the distributed proposal algorithm
  (Theorem 4.1, :mod:`repro.core.token_dropping.proposal`);
* :func:`three_level_kernel` — the O(Δ) height-3 algorithm
  (Theorem 4.7, :mod:`repro.core.token_dropping.three_level`).

Each kernel re-represents its input once — dense node ids in
``repr``-sorted order, parent/child adjacency as flat CSR lists sharing
one edge-id space — and then simulates the *same execution* the reference
path performs, touching only integer arrays in the hot loop: token
positions, per-edge consumed flags, incremental parent/child counts, and
per-phase request/grant buffers instead of per-message dict envelopes.

Exactness contract
------------------
The kernels reproduce the reference executions bit-for-bit: the same
final token configuration, the same set of used edges, the same pass
histories, the same round counts, and (for the distributed kernels) the
same :class:`~repro.local_model.metrics.ExecutionMetrics` including
message counts and per-node halt rounds.  This works because

* interning is ``repr``-sorted, so the reference tie-break rule
  ("smallest ``repr`` first", see ``_choose`` in the proposal module)
  becomes "smallest dense id first" — candidate lists built by ascending
  scans are already in reference order;
* the ``random`` tie-break seeds one :class:`random.Random` per node from
  ``f"{seed}:{node_id!r}"`` exactly like the reference node classes, and
  each node's generator is consumed in the same per-node event order;
* message counting replays the scheduler's delivery rule (messages to
  nodes that halted in or before the sending round are dropped), and the
  termination checks run against the same pre-``LEAVE`` neighbour counts
  the reference nodes observe.

The cross-validation suite asserts all of this on hundreds of seeded
instances (``tests/integration/test_compact_cross_validation.py``).

The distributed kernels run behind the existing
:class:`~repro.local_model.runner.Runner` API: the algorithm factories
register them via ``AlgorithmFactory(..., compact_kernel=...)`` and
:mod:`repro.dispatch` decides per execution which path runs.
"""

from __future__ import annotations

import random
from array import array
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.token_dropping.game import (
    LOCAL_HAS_TOKEN,
    LOCAL_LEVEL,
    LOCAL_PARENTS,
    TokenDroppingInstance,
)
from repro.core.token_dropping.traversal import TokenDroppingSolution, Traversal
from repro.graphs.compact import intern_nodes
from repro.local_model.compact import CompactEngine, CompactNetwork
from repro.local_model.metrics import ExecutionMetrics


class _DenseGame:
    """Directed layered adjacency in flat parallel lists.

    Parent and child CSR structures share one edge-id space: directed
    edge ``e`` appears once in some node's parent list and once in the
    parent's child list, so a single ``consumed`` byte per edge serves
    both endpoints.  Lists are ascending per node (dense ids are interned
    in ``repr`` order), which is exactly the reference tie-break order.
    """

    __slots__ = (
        "num_nodes",
        "num_edges",
        "has_token",
        "level",
        "par_ptr",
        "par_node",
        "par_edge",
        "chi_ptr",
        "chi_node",
        "chi_edge",
    )

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes
        self.num_edges = 0
        self.has_token = bytearray(num_nodes)
        self.level = [0] * num_nodes
        self.par_ptr = [0] * (num_nodes + 1)
        self.par_node: List[int] = []
        self.par_edge: List[int] = []
        self.chi_ptr = [0] * (num_nodes + 1)
        self.chi_node: List[int] = []
        self.chi_edge: List[int] = []

    def _flatten_children(self, chi_lists: List[List[Tuple[int, int]]]) -> None:
        for p, entries in enumerate(chi_lists):
            for child, edge in entries:
                self.chi_node.append(child)
                self.chi_edge.append(edge)
            self.chi_ptr[p + 1] = len(self.chi_node)

    @classmethod
    def of(cls, net: CompactNetwork) -> "_DenseGame":
        """The dense game of ``net``, memoized on the compact network.

        The dense adjacency, initial token flags, and levels are all
        derived from immutable inputs; kernels copy the mutable pieces
        (token flags) before simulating, so the memo stays pristine.
        """
        cached = net.derived.get("token_game")
        if cached is None:
            cached = cls.from_compact_network(net)
            net.derived["token_game"] = cached
        return cached

    @classmethod
    def _build(cls, n: int, rows) -> "_DenseGame":
        """Build from per-node ``(has_token, level, sorted_dense_parents)``.

        The single place where CSR slots and the shared edge-id space are
        assigned; both constructors feed it through an accessor generator.
        """
        game = cls(n)
        chi_lists: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        edge = 0
        for i, (has_token, level, parents) in enumerate(rows):
            if has_token:
                game.has_token[i] = 1
            if level:
                game.level[i] = level
            for p in parents:
                game.par_node.append(p)
                game.par_edge.append(edge)
                chi_lists[p].append((i, edge))
                edge += 1
            game.par_ptr[i + 1] = len(game.par_node)
        game.num_edges = edge
        game._flatten_children(chi_lists)
        return game

    @classmethod
    def from_compact_network(cls, net: CompactNetwork) -> "_DenseGame":
        """Read the token-dropping local inputs of every node (one pass)."""
        index_of = net.index_of

        def rows():
            for local in net.local_inputs:
                local = local or {}
                yield (
                    local.get(LOCAL_HAS_TOKEN),
                    int(local.get(LOCAL_LEVEL) or 0),
                    sorted(index_of[x] for x in local.get(LOCAL_PARENTS, ())),
                )

        return cls._build(net.num_nodes, rows())

    @classmethod
    def from_instance(
        cls, instance: TokenDroppingInstance
    ) -> Tuple["_DenseGame", Tuple, Dict]:
        """Intern a :class:`TokenDroppingInstance` directly (one pass)."""
        graph = instance.graph
        node_ids, index_of = intern_nodes(graph.levels)

        def rows():
            for node in node_ids:
                yield (
                    node in instance.tokens,
                    graph.levels[node],
                    sorted(index_of[x] for x in graph.parents(node)),
                )

        return cls._build(len(node_ids), rows()), node_ids, index_of


def game_from_arrays(
    num_nodes: int,
    has_token,
    levels,
    edges,
) -> Tuple[_DenseGame, List[int]]:
    """Build a dense game directly from int arrays (no dict instance).

    The instance-from-arrays entry point used by the compact orientation
    phase driver: callers that already hold dense node ids never pay for a
    dict :class:`TokenDroppingInstance`/``to_network`` round-trip.

    Parameters
    ----------
    num_nodes:
        Number of dense nodes; all arrays are indexed ``0 .. num_nodes-1``.
    has_token / levels:
        Per-node token flag and level (the caller's loads).
    edges:
        List of ``(child, parent, payload)`` triples (``payload`` is an
        arbitrary caller-side edge index).  Order is irrelevant: the CSR
        lists are counting-sorted into the ascending per-node order the
        reference tie-breaks require (dense interning is ``repr``-sorted,
        so ascending dense order is reference order).

    Returns
    -------
    (game, payloads)
        The dense game plus ``payloads[game_edge]`` echoing the caller's
        payload of each directed game edge.
    """
    game = _DenseGame(num_nodes)
    for i in range(num_nodes):
        if has_token[i]:
            game.has_token[i] = 1
        level = levels[i]
        if level:
            game.level[i] = level

    num_edges = len(edges)
    game.num_edges = num_edges
    # Game edge ids follow the (child, parent)-sorted order, which makes
    # the parent CSR a straight copy and keeps both adjacency lists
    # ascending per node.
    edges = sorted(edges)
    par_ptr = game.par_ptr
    chi_ptr = game.chi_ptr
    for c, p, _ in edges:
        par_ptr[c + 1] += 1
        chi_ptr[p + 1] += 1
    for i in range(num_nodes):
        par_ptr[i + 1] += par_ptr[i]
        chi_ptr[i + 1] += chi_ptr[i]

    game.par_node = [0] * num_edges
    game.par_edge = list(range(num_edges))
    game.chi_node = [0] * num_edges
    game.chi_edge = [0] * num_edges
    payloads = [0] * num_edges
    par_node = game.par_node
    chi_node, chi_edge = game.chi_node, game.chi_edge
    cursor = chi_ptr[:num_nodes]
    for ge, (c, p, payload) in enumerate(edges):
        par_node[ge] = p
        payloads[ge] = payload
        slot = cursor[p]
        chi_node[slot] = c
        chi_edge[slot] = ge
        cursor[p] = slot + 1
    return game, payloads


def game_from_edge_stream(
    num_nodes: int,
    edges: Iterable[Tuple[int, int]],
    *,
    has_token=None,
    levels=None,
) -> Tuple[_DenseGame, array]:
    """Build a dense game from a streamed ``(child, parent)`` iterable.

    The million-node counterpart of :func:`game_from_arrays`: the stream
    is consumed once into two flat ``array('q')`` buffers and
    counting-sorted into the same ascending ``(child, parent)`` game-edge
    order — the resulting CSR structures are element-for-element equal to
    what :func:`game_from_arrays` produces on the materialised edge list
    (the cross-validation tests assert this), but no per-edge tuples or
    Python-list sort keys ever exist.  All adjacency arrays come out as
    ``array('q')`` (8 bytes per entry) rather than int-object lists,
    which is what makes the 10^6–10^7 tiers fit in memory.

    ``has_token`` / ``levels`` are optional dense-indexed per-node
    inputs; callers that must draw tokens *after* consuming a shared-RNG
    edge stream (see ``random_token_dropping(compact=True)``) leave them
    ``None`` and fill ``game.has_token`` / ``game.level`` in place.

    Returns ``(game, payloads)`` where ``payloads[game_edge]`` is the
    stream position of that edge, mirroring :func:`game_from_arrays`'s
    payload echo.  Duplicate edges are not detected (the generating
    streams are duplicate-free by construction).
    """
    game = _DenseGame(num_nodes)
    if has_token is not None:
        for i in range(num_nodes):
            if has_token[i]:
                game.has_token[i] = 1
    if levels is not None:
        for i in range(num_nodes):
            level = levels[i]
            if level:
                game.level[i] = level

    child_of = array("q")
    parent_of = array("q")
    for c, p in edges:
        child_of.append(c)
        parent_of.append(p)
    m = len(child_of)
    game.num_edges = m

    # LSD radix sort of the stream positions: a stable counting pass by
    # parent, then by child, yields ascending (child, parent) — the game
    # edge-id order game_from_arrays gets from sorting triples.
    zeros = bytes(8 * (num_nodes + 1))
    cnt_p = array("q", zeros)
    for p in parent_of:
        cnt_p[p + 1] += 1
    for i in range(num_nodes):
        cnt_p[i + 1] += cnt_p[i]
    by_parent = array("q", bytes(8 * m))
    cursor = array("q", cnt_p[:num_nodes])
    for e in range(m):
        p = parent_of[e]
        by_parent[cursor[p]] = e
        cursor[p] += 1

    cnt_c = array("q", zeros)
    for c in child_of:
        cnt_c[c + 1] += 1
    for i in range(num_nodes):
        cnt_c[i + 1] += cnt_c[i]
    order = array("q", bytes(8 * m))
    cursor = array("q", cnt_c[:num_nodes])
    for e in by_parent:
        c = child_of[e]
        order[cursor[c]] = e
        cursor[c] += 1
    del by_parent

    # cnt_c / cnt_p are exactly the parent/child CSR offsets.
    game.par_ptr = cnt_c
    game.chi_ptr = cnt_p
    par_node = array("q", bytes(8 * m))
    chi_node = array("q", bytes(8 * m))
    chi_edge = array("q", bytes(8 * m))
    payloads = array("q", bytes(8 * m))
    cursor = array("q", cnt_p[:num_nodes])
    for ge in range(m):
        e = order[ge]
        p = parent_of[e]
        par_node[ge] = p
        payloads[ge] = e
        slot = cursor[p]
        chi_node[slot] = child_of[e]
        chi_edge[slot] = ge
        cursor[p] = slot + 1
    game.par_node = par_node
    game.par_edge = array("q", range(m))
    game.chi_node = chi_node
    game.chi_edge = chi_edge
    return game, payloads


def _node_rngs(
    tie_break: str, seed: int, node_ids: Tuple
) -> Optional[List[random.Random]]:
    """Per-node generators matching the reference node constructors."""
    if tie_break != "random":
        return None
    return [random.Random(f"{seed}:{node_id!r}") for node_id in node_ids]


def _pick(candidates: List, tie_break: str, rng: Optional[random.Random]):
    """Reference ``_choose`` over an already-ascending candidate list."""
    if tie_break == "min":
        return candidates[0]
    if tie_break == "max":
        return candidates[-1]
    return candidates[rng.randrange(len(candidates))]


def _leave_messages(i, game, alive, dying_now, consumed, n_par, n_chi) -> int:
    """LEAVE fan-out of one dying node (shared by both round kernels).

    Counts deliveries to surviving neighbours (receivers halting in the
    same round drop the message, per the scheduler rule) and removes the
    dying node from each survivor's parent/child count.
    """
    par_ptr, par_node, par_edge = game.par_ptr, game.par_node, game.par_edge
    chi_ptr, chi_node, chi_edge = game.chi_ptr, game.chi_node, game.chi_edge
    messages = 0
    for s in range(par_ptr[i], par_ptr[i + 1]):
        if consumed[par_edge[s]]:
            continue
        p = par_node[s]
        if alive[p] and not dying_now[p]:
            messages += 1
            n_chi[p] -= 1
    for s in range(chi_ptr[i], chi_ptr[i + 1]):
        if consumed[chi_edge[s]]:
            continue
        c = chi_node[s]
        if alive[c] and not dying_now[c]:
            messages += 1
            n_par[c] -= 1
    return messages


def _halt_outputs(ids, initially, has_token, token, received, passed) -> List[dict]:
    """Per-node halt outputs in original-id space (both round kernels)."""
    return [
        {
            "initially_occupied": bool(initially[i]),
            "finally_occupied": bool(has_token[i]),
            "final_token": ids[token[i]] if has_token[i] else None,
            "received": tuple((ids[t], ids[s]) for t, s in received[i]),
            "passed": tuple((ids[t], ids[c]) for t, c in passed[i]),
        }
        for i in range(len(ids))
    ]


# ----------------------------------------------------------------------
# The distributed proposal algorithm (Theorem 4.1)
# ----------------------------------------------------------------------
def proposal_game_kernel(
    game: _DenseGame,
    max_rounds: int,
    *,
    tie_break: str = "min",
    rngs: Optional[List[random.Random]] = None,
    count_messages: bool = True,
) -> Tuple[bytearray, List[int], List, List, bytearray, CompactEngine]:
    """Run the proposal algorithm's execution loop on a dense game.

    The shared core behind :func:`proposal_kernel` (which wraps a
    :class:`CompactNetwork`) and the compact orientation phase driver
    (which builds per-phase games via :func:`game_from_arrays`).  Returns
    the dense end state ``(has_token, token, received, passed, consumed,
    engine)``: ``consumed[game_edge]`` marks exactly the edges used by
    passes, and ``engine`` carries the reference-equal round/message/halt
    bookkeeping.

    ``count_messages=False`` skips the LEAVE/announce delivery accounting
    (``engine.messages`` is then meaningless) while keeping the
    termination-driving counter decrements — rounds, halts, passes, and
    consumed edges are unchanged.  Callers that only need the game
    outcome and round count (the orientation phase driver) use it to
    avoid the per-death delivery checks.
    """
    n = game.num_nodes
    engine = CompactEngine(n, max_rounds)
    alive = engine.alive
    par_ptr, par_node, par_edge = game.par_ptr, game.par_node, game.par_edge
    chi_ptr, chi_node, chi_edge = game.chi_ptr, game.chi_node, game.chi_edge

    has_token = bytearray(game.has_token)
    token = [i if has_token[i] else -1 for i in range(n)]
    n_par = [par_ptr[i + 1] - par_ptr[i] for i in range(n)]
    n_chi = [chi_ptr[i + 1] - chi_ptr[i] for i in range(n)]
    consumed = bytearray(game.num_edges)
    received: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    passed: List[List[Tuple[int, int]]] = [[] for _ in range(n)]

    active = list(range(n))
    dying_now = bytearray(n)
    # In-flight grants (child, parent, token), applied at the next
    # announce round exactly when the reference node processes its inbox.
    pending_grants: List[Tuple[int, int, int]] = []

    def announce(round_number: int) -> None:
        nonlocal active
        for c, p, tok in pending_grants:
            has_token[c] = 1
            token[c] = tok
            received[c].append((tok, p))
            n_par[c] -= 1
        pending_grants.clear()
        # Termination checks run against pre-LEAVE state: a death in this
        # round only becomes visible to neighbours at the next round.
        dying = []
        for i in active:
            if (n_chi[i] == 0) if has_token[i] else (n_par[i] == 0):
                dying.append(i)
                dying_now[i] = 1
        if count_messages:
            messages = 0
            for i in dying:
                messages += _leave_messages(
                    i, game, alive, dying_now, consumed, n_par, n_chi
                )
            # A surviving token-holder's announcement is delivered over
            # every unconsumed edge to a child that has not left — which,
            # once this round's LEAVE decrements are in, is exactly
            # n_chi[i]: consumed edges and departed children are already
            # subtracted, and same-round deaths drop the message per the
            # scheduler rule.
            for i in active:
                if has_token[i] and not dying_now[i]:
                    messages += n_chi[i]
            engine.messages += messages
        else:
            # Quiet LEAVE: only the termination-driving decrements.  Dead
            # receivers' counters are never read again, so the survivor
            # checks of the counting path are unnecessary here.
            for i in dying:
                for s in range(par_ptr[i], par_ptr[i + 1]):
                    if not consumed[par_edge[s]]:
                        n_chi[par_node[s]] -= 1
                for s in range(chi_ptr[i], chi_ptr[i + 1]):
                    if not consumed[chi_edge[s]]:
                        n_par[chi_node[s]] -= 1
        for i in dying:
            engine.halt(i, round_number)
            dying_now[i] = 0
        if dying:
            active = [i for i in active if alive[i]]

    def request_round() -> Dict[int, List[Tuple[int, int]]]:
        requests: Dict[int, List[Tuple[int, int]]] = {}
        messages = 0
        if tie_break == "min":
            # Smallest repr == smallest dense id == first valid slot, so
            # the default policy needs no candidate list at all.
            for c in active:
                if has_token[c]:
                    continue
                for s in range(par_ptr[c], par_ptr[c + 1]):
                    e = par_edge[s]
                    if consumed[e]:
                        continue
                    p = par_node[s]
                    if alive[p] and has_token[p]:
                        messages += 1
                        requests.setdefault(p, []).append((c, e))
                        break
        else:
            for c in active:
                if has_token[c]:
                    continue
                candidates = []
                for s in range(par_ptr[c], par_ptr[c + 1]):
                    e = par_edge[s]
                    if consumed[e]:
                        continue
                    p = par_node[s]
                    if alive[p] and has_token[p]:
                        candidates.append((p, e))
                if not candidates:
                    continue
                p, e = _pick(candidates, tie_break, rngs[c] if rngs else None)
                messages += 1
                requests.setdefault(p, []).append((c, e))
        engine.messages += messages
        return requests

    def grant_round(requests: Dict[int, List[Tuple[int, int]]]) -> None:
        messages = 0
        for p, requesters in requests.items():
            # p announced this game round, so it is alive and still holds
            # its token; the requesters are current children (ascending,
            # because request_round scans nodes in dense order).
            c, e = _pick(requesters, tie_break, rngs[p] if rngs else None)
            messages += 1
            tok = token[p]
            passed[p].append((tok, c))
            consumed[e] = 1
            n_chi[p] -= 1
            has_token[p] = 0
            token[p] = -1
            pending_grants.append((c, p, tok))
        engine.messages += messages

    announce(0)
    while engine.n_alive:
        engine.step()
        requests = request_round()
        engine.step()
        grant_round(requests)
        announce(engine.step())

    return has_token, token, received, passed, consumed, engine


def proposal_kernel(
    net: CompactNetwork,
    max_rounds: int,
    *,
    tie_break: str = "min",
    seed: int = 0,
) -> Tuple[List[dict], ExecutionMetrics]:
    """Simulate the proposal algorithm's execution on flat int arrays.

    Returns per-dense-node outputs (the dicts the reference nodes pass to
    ``ctx.halt``) and reference-equal execution metrics.
    """
    game = _DenseGame.of(net)
    ids = net.node_ids
    initially = bytes(game.has_token)
    has_token, token, received, passed, _, engine = proposal_game_kernel(
        game,
        max_rounds,
        tie_break=tie_break,
        rngs=_node_rngs(tie_break, seed, ids),
    )
    outputs = _halt_outputs(ids, initially, has_token, token, received, passed)
    return outputs, engine.metrics(ids)


# ----------------------------------------------------------------------
# The three-level algorithm (Theorem 4.7)
# ----------------------------------------------------------------------
def three_level_kernel(
    net: CompactNetwork,
    max_rounds: int,
    *,
    tie_break: str = "min",
    seed: int = 0,
) -> Tuple[List[dict], ExecutionMetrics]:
    """Simulate the height-3 algorithm's execution on flat int arrays."""
    game = _DenseGame.of(net)
    n = game.num_nodes
    engine = CompactEngine(n, max_rounds)
    alive = engine.alive
    level = game.level
    par_ptr, par_node, par_edge = game.par_ptr, game.par_node, game.par_edge
    chi_ptr, chi_node, chi_edge = game.chi_ptr, game.chi_node, game.chi_edge

    has_token = bytearray(game.has_token)
    initially = bytes(has_token)
    token = [i if has_token[i] else -1 for i in range(n)]
    n_par = [par_ptr[i + 1] - par_ptr[i] for i in range(n)]
    n_chi = [chi_ptr[i + 1] - chi_ptr[i] for i in range(n)]
    consumed = bytearray(game.num_edges)
    received: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    passed: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    rngs = _node_rngs(tie_break, seed, net.node_ids)

    active = list(range(n))
    dying_now = bytearray(n)
    # In-flight GRANTs to level-1 nodes and ACCEPTs to level-1 proposers,
    # both applied at the next announce round (reference inbox timing).
    pending_grants: List[Tuple[int, int, int]] = []
    pending_accepts: List[Tuple[int, int]] = []

    def announce(round_number: int) -> None:
        nonlocal active
        for c, p, tok in pending_grants:
            has_token[c] = 1
            token[c] = tok
            received[c].append((tok, p))
            n_par[c] -= 1
        pending_grants.clear()
        for p, c in pending_accepts:
            # The accepted proposer still holds the proposed token.
            passed[p].append((token[p], c))
            n_chi[p] -= 1
            has_token[p] = 0
            token[p] = -1
        pending_accepts.clear()
        dying = []
        for i in active:
            lvl = level[i]
            if lvl == 2:
                die = (not has_token[i]) or n_chi[i] == 0
            elif lvl == 0:
                die = bool(has_token[i]) or n_par[i] == 0
            else:
                die = (n_chi[i] == 0) if has_token[i] else (n_par[i] == 0)
            if die:
                dying.append(i)
                dying_now[i] = 1
        messages = 0
        for i in dying:
            messages += _leave_messages(
                i, game, alive, dying_now, consumed, n_par, n_chi
            )
        # Counter-based delivery counts, as in proposal_kernel's announce:
        # after this round's LEAVE decrements, n_chi/n_par hold exactly the
        # unconsumed edges to neighbours that have not left, and same-round
        # deaths drop the message per the scheduler rule.
        for i in active:
            if dying_now[i]:
                continue
            lvl = level[i]
            if lvl == 2 and has_token[i]:
                messages += n_chi[i]
            elif lvl == 0 and not has_token[i]:
                messages += n_par[i]
        engine.messages += messages
        for i in dying:
            engine.halt(i, round_number)
            dying_now[i] = 0
        if dying:
            active = [i for i in active if alive[i]]

    def act_round() -> Tuple[
        Dict[int, List[Tuple[int, int]]], Dict[int, List[Tuple[int, int, int]]]
    ]:
        requests: Dict[int, List[Tuple[int, int]]] = {}
        proposals: Dict[int, List[Tuple[int, int, int]]] = {}
        messages = 0
        first = tie_break == "min"
        for i in active:
            if level[i] != 1:
                continue
            if not has_token[i]:
                candidates = []
                for s in range(par_ptr[i], par_ptr[i + 1]):
                    e = par_edge[s]
                    if consumed[e]:
                        continue
                    p = par_node[s]
                    if alive[p] and has_token[p]:
                        candidates.append((p, e))
                        if first:
                            break
                if not candidates:
                    continue
                p, e = _pick(candidates, tie_break, rngs[i] if rngs else None)
                messages += 1
                requests.setdefault(p, []).append((i, e))
            else:
                candidates = []
                for s in range(chi_ptr[i], chi_ptr[i + 1]):
                    e = chi_edge[s]
                    if consumed[e]:
                        continue
                    c = chi_node[s]
                    # Level-0 survivors are exactly the unoccupied nodes
                    # that announced UNOCCUPIED this game round.
                    if alive[c] and not has_token[c]:
                        candidates.append((c, e))
                        if first:
                            break
                if not candidates:
                    continue
                c, e = _pick(candidates, tie_break, rngs[i] if rngs else None)
                messages += 1
                proposals.setdefault(c, []).append((i, e, token[i]))
        engine.messages += messages
        return requests, proposals

    def resolve_round(
        requests: Dict[int, List[Tuple[int, int]]],
        proposals: Dict[int, List[Tuple[int, int, int]]],
    ) -> None:
        messages = 0
        for p, requesters in requests.items():
            # Level-2 granters announced this game round, so they are
            # alive and hold their token.
            c, e = _pick(requesters, tie_break, rngs[p] if rngs else None)
            messages += 1
            tok = token[p]
            passed[p].append((tok, c))
            consumed[e] = 1
            n_chi[p] -= 1
            has_token[p] = 0
            token[p] = -1
            pending_grants.append((c, p, tok))
        for c, offers in proposals.items():
            # Level-0 acceptors announced UNOCCUPIED, so they are alive
            # and unoccupied; the edge is consumed on both sides now (the
            # proposer learns via the pending ACCEPT next round).
            p, e, tok = _pick(offers, tie_break, rngs[c] if rngs else None)
            messages += 1
            has_token[c] = 1
            token[c] = tok
            received[c].append((tok, p))
            consumed[e] = 1
            n_par[c] -= 1
            pending_accepts.append((p, c))
        engine.messages += messages

    announce(0)
    while engine.n_alive:
        engine.step()
        requests, proposals = act_round()
        engine.step()
        resolve_round(requests, proposals)
        announce(engine.step())

    ids = net.node_ids
    outputs = _halt_outputs(ids, initially, has_token, token, received, passed)
    return outputs, engine.metrics(ids)


# ----------------------------------------------------------------------
# The centralized greedy baseline (Section 4)
# ----------------------------------------------------------------------
def greedy_kernel(
    instance: TokenDroppingInstance,
    *,
    order: str = "first",
    seed: int = 0,
) -> TokenDroppingSolution:
    """Run the centralized greedy baseline on flat int arrays.

    Replays :func:`~repro.core.token_dropping.greedy.greedy_token_dropping`
    move for move: the reference scans every token's children each
    iteration and sorts candidates by ``repr``; the kernel keeps an
    incremental movable-children count per node, so each move costs
    O(tokens + Δ) integer work instead of O(tokens · Δ) hashing plus an
    O(tokens log tokens) string sort.
    """
    game, node_ids, index_of = _DenseGame.from_instance(instance)
    level = game.level
    par_ptr, par_node, par_edge = game.par_ptr, game.par_node, game.par_edge
    chi_ptr, chi_node, chi_edge = game.chi_ptr, game.chi_node, game.chi_edge

    rng = random.Random(seed)
    occupied = bytearray(game.has_token)
    consumed = bytearray(game.num_edges)
    # The reference iterates candidates in token-insertion order (the
    # iteration order of ``instance.tokens``), which the seeded ``random``
    # policy indexes into — so that order is part of the replayed state.
    tokens_in_order = [index_of[t] for t in instance.tokens]
    tokens_ascending = sorted(tokens_in_order)
    position = [-1] * game.num_nodes
    paths: Dict[int, List[int]] = {}
    for t in tokens_in_order:
        position[t] = t
        paths[t] = [t]
    history: List[List[Tuple[int, int]]] = [[] for _ in range(game.num_nodes)]

    # movable[v] = number of children reachable from v over an unconsumed
    # edge and currently unoccupied; a token is movable iff its node has
    # a positive count.  Maintained incrementally per move.
    movable = [0] * game.num_nodes
    for v in range(game.num_nodes):
        count = 0
        for s in range(chi_ptr[v], chi_ptr[v + 1]):
            if not occupied[chi_node[s]]:
                count += 1
        movable[v] = count

    while True:
        chosen = -1
        if order == "first":
            for t in tokens_ascending:
                if movable[position[t]]:
                    chosen = t
                    break
        elif order == "random":
            candidates = [t for t in tokens_in_order if movable[position[t]]]
            if candidates:
                chosen = candidates[rng.randrange(len(candidates))]
        elif order == "highest_level":
            best_key = None
            for t in tokens_in_order:
                if movable[position[t]]:
                    key = (level[position[t]], t)
                    if best_key is None or key > best_key:
                        best_key = key
                        chosen = t
        else:  # lowest_level
            best_key = None
            for t in tokens_in_order:
                if movable[position[t]]:
                    key = (level[position[t]], t)
                    if best_key is None or key < best_key:
                        best_key = key
                        chosen = t
        if chosen < 0:
            break

        node = position[chosen]
        if order != "random":
            # First unconsumed slot to an unoccupied child == the
            # reference's smallest-repr child.
            child = edge = -1
            for s in range(chi_ptr[node], chi_ptr[node + 1]):
                if not consumed[chi_edge[s]] and not occupied[chi_node[s]]:
                    child, edge = chi_node[s], chi_edge[s]
                    break
        else:
            steps = [
                (chi_node[s], chi_edge[s])
                for s in range(chi_ptr[node], chi_ptr[node + 1])
                if not consumed[chi_edge[s]] and not occupied[chi_node[s]]
            ]
            child, edge = steps[rng.randrange(len(steps))]

        consumed[edge] = 1
        movable[node] -= 1  # the chosen child was unoccupied
        occupied[node] = 0
        for s in range(par_ptr[node], par_ptr[node + 1]):
            if not consumed[par_edge[s]]:
                movable[par_node[s]] += 1
        occupied[child] = 1
        for s in range(par_ptr[child], par_ptr[child + 1]):
            if not consumed[par_edge[s]]:
                movable[par_node[s]] -= 1
        position[chosen] = child
        paths[chosen].append(child)
        history[node].append((chosen, child))

    traversals = {
        node_ids[t]: Traversal(node_ids[t], [node_ids[v] for v in path])
        for t, path in paths.items()
    }
    pass_history = {
        node_ids[v]: tuple((node_ids[t], node_ids[c]) for t, c in events)
        for v, events in enumerate(history)
        if events
    }
    return TokenDroppingSolution(
        traversals=traversals,
        pass_history=pass_history,
        game_rounds=None,
        communication_rounds=None,
    )
