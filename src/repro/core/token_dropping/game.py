"""The token dropping game: instances and their validation.

Section 4 of the paper defines the game as follows.  The input is a
layered DAG together with a set of tokens, at most one per node.  A token
may move from its node to any *child* (a neighbour one level below) along
an edge, and every edge may be used at most once over the whole game.  The
single player's goal is to reach a configuration in which no token can be
moved any more ("the only goal of this single player game is to get
stuck").

:class:`TokenDroppingInstance` bundles the layered graph with the initial
token placement and provides the conversion to a
:class:`~repro.local_model.network.Network` that the distributed
algorithms run on.  Following Section 3 and the remark in Section 4, the
*local input* of a node contains only what the paper allows it to know
initially: whether it holds a token and which incident edges point to
parents vs. children.  Levels are intentionally **not** part of the
default local input (nodes "are not aware of their level"); algorithms
that legitimately need layer indices (the height-3 algorithm of
Theorem 4.7, where the layering is promised) request them explicitly via
``include_levels=True``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, Optional

from repro.graphs.layered import LayeredGraph
from repro.local_model.network import Network

NodeId = Hashable

#: Local-input keys exposed to distributed token dropping algorithms.
LOCAL_HAS_TOKEN = "has_token"
LOCAL_PARENTS = "parents"
LOCAL_CHILDREN = "children"
LOCAL_LEVEL = "level"


class InvalidInstanceError(ValueError):
    """Raised when a token dropping instance violates the game's preconditions."""


@dataclass(frozen=True)
class TokenDroppingInstance:
    """An input to the token dropping game.

    Parameters
    ----------
    graph:
        The layered DAG (levels + child→parent edges).
    tokens:
        The set of nodes that initially hold a token.  Being a set, the
        "at most one token per node" precondition holds by construction;
        membership in the graph is validated.
    """

    graph: LayeredGraph
    tokens: FrozenSet[NodeId]

    def __init__(self, graph: LayeredGraph, tokens: Iterable[NodeId]) -> None:
        token_set = frozenset(tokens)
        unknown = token_set - set(graph.levels)
        if unknown:
            raise InvalidInstanceError(
                f"token(s) placed on unknown node(s): {sorted(map(repr, unknown))}"
            )
        object.__setattr__(self, "graph", graph)
        object.__setattr__(self, "tokens", token_set)
        # Memoized to_network results (instances are immutable, so the
        # conversion is deterministic); keyed by include_levels.
        object.__setattr__(self, "_networks", {})

    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """L, the height of the game (the maximum level)."""
        return self.graph.height()

    @property
    def max_degree(self) -> int:
        """Δ, the maximum degree of the underlying graph."""
        return self.graph.max_degree()

    @property
    def num_tokens(self) -> int:
        """Number of tokens initially placed."""
        return len(self.tokens)

    def has_token(self, node: NodeId) -> bool:
        """True if ``node`` initially holds a token."""
        return node in self.tokens

    def theoretical_round_bound(self, constant: int = 8) -> int:
        """A concrete budget of the form ``constant · (L + 1) · (Δ + 1)² + constant``.

        Theorem 4.1 states the proposal algorithm finishes in O(L·Δ²) game
        rounds.  Benchmarks and tests use this as a hard ``max_rounds``
        budget so that the asymptotic bound is itself a checked invariant
        (the ``+1`` terms keep the budget positive for degenerate games).
        """
        length = self.height + 1
        degree = self.max_degree + 1
        return constant * length * degree * degree + constant

    # ------------------------------------------------------------------
    def to_network(self, include_levels: bool = False) -> Network:
        """Build the LOCAL-model communication network for this instance.

        Every game node becomes a network node; every (child, parent) game
        edge becomes an undirected communication edge.  The local input of
        a node is a dict with keys

        * ``"has_token"`` -- whether the node starts with a token,
        * ``"parents"`` -- frozenset of neighbours one level above,
        * ``"children"`` -- frozenset of neighbours one level below,
        * ``"level"`` -- only when ``include_levels=True``.

        The conversion is a single O(n + m) pass: the per-node parent and
        child sets are the ones :class:`~repro.graphs.layered.LayeredGraph`
        precomputed at construction, the undirected adjacency is their
        union, and the network is built through the trusted
        :meth:`~repro.local_model.network.Network.from_validated_adjacency`
        constructor (the layered graph already enforced simplicity), so no
        part of the edge list is re-scanned per node or re-validated.
        The result is memoized: instances are immutable, so repeated
        executions on the same game (e.g. backend head-to-heads) share
        one network object — and thereby its cached compact form.
        """
        cached = self._networks.get(include_levels)
        if cached is not None:
            return cached
        graph = self.graph
        levels = graph.levels
        tokens = self.tokens
        adjacency: Dict[NodeId, FrozenSet[NodeId]] = {}
        local_inputs: Dict[NodeId, Dict[str, object]] = {}
        for node in levels:
            parents = graph.parents(node)
            children = graph.children(node)
            adjacency[node] = parents | children
            entry: Dict[str, object] = {
                LOCAL_HAS_TOKEN: node in tokens,
                LOCAL_PARENTS: parents,
                LOCAL_CHILDREN: children,
            }
            if include_levels:
                entry[LOCAL_LEVEL] = levels[node]
            local_inputs[node] = entry
        network = Network.from_validated_adjacency(
            adjacency, graph.edges, local_inputs
        )
        self._networks[include_levels] = network
        return network

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """A short human-readable description used by examples."""
        return (
            f"token dropping game: {len(self.graph)} nodes, "
            f"{self.graph.num_edges()} edges, height L={self.height}, "
            f"Δ={self.max_degree}, {self.num_tokens} tokens"
        )


def random_token_placement(
    graph: LayeredGraph,
    fraction: float,
    rng,
    exclude_bottom_level: bool = False,
) -> FrozenSet[NodeId]:
    """Place tokens on a random ``fraction`` of the nodes.

    Parameters
    ----------
    graph:
        The layered graph to place tokens on.
    fraction:
        Expected fraction of nodes holding a token, in ``[0, 1]``.
    rng:
        A ``random.Random`` instance (explicit for reproducibility).
    exclude_bottom_level:
        When True, level-0 nodes never receive a token, which produces
        "interesting" games where most tokens can actually move.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must lie in [0, 1], got {fraction}")
    chosen = []
    for node in graph.nodes:
        if exclude_bottom_level and graph.level(node) == 0:
            continue
        if rng.random() < fraction:
            chosen.append(node)
    return frozenset(chosen)


def figure2_instance() -> TokenDroppingInstance:
    """The 5-level instance of Figure 2 of the paper (reconstructed).

    The exact drawing is not machine-readable, so this is a faithful
    re-creation of its *shape*: five levels (0--4), a sparse layered graph,
    and tokens on a subset of the upper-level nodes.  It is used by the
    quickstart example and by tests as a small, fixed, non-trivial game.
    """
    levels: Dict[NodeId, int] = {}
    level_sizes = [4, 4, 4, 3, 2]
    for level, size in enumerate(level_sizes):
        for index in range(size):
            levels[(level, index)] = level
    edges = [
        ((0, 0), (1, 0)),
        ((0, 1), (1, 0)),
        ((0, 1), (1, 1)),
        ((0, 2), (1, 2)),
        ((0, 3), (1, 2)),
        ((0, 3), (1, 3)),
        ((1, 0), (2, 0)),
        ((1, 1), (2, 0)),
        ((1, 1), (2, 1)),
        ((1, 2), (2, 2)),
        ((1, 3), (2, 2)),
        ((1, 3), (2, 3)),
        ((2, 0), (3, 0)),
        ((2, 1), (3, 0)),
        ((2, 1), (3, 1)),
        ((2, 2), (3, 1)),
        ((2, 3), (3, 2)),
        ((3, 0), (4, 0)),
        ((3, 1), (4, 0)),
        ((3, 1), (4, 1)),
        ((3, 2), (4, 1)),
    ]
    graph = LayeredGraph(levels=levels, edges=edges)
    tokens = frozenset(
        {
            (1, 1),
            (2, 0),
            (2, 2),
            (3, 0),
            (3, 1),
            (3, 2),
            (4, 0),
            (4, 1),
        }
    )
    return TokenDroppingInstance(graph=graph, tokens=tokens)


def instance_from_loads(
    graph: LayeredGraph, tokens: Optional[Iterable[NodeId]] = None
) -> TokenDroppingInstance:
    """Convenience constructor used by the orientation/assignment phases.

    Accepts ``tokens=None`` to mean "no tokens" (a trivially solved game).
    """
    return TokenDroppingInstance(graph=graph, tokens=tokens or frozenset())
