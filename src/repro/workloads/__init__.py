"""Named workload scenarios shared by examples and benchmarks."""

from repro.workloads.scenarios import (
    bounded_degree_token_dropping,
    caterpillar_orientation,
    datacenter_assignment,
    figure2_game,
    hard_matching_bipartite,
    layered_dag_orientation,
    long_path_orientation,
    orientation_smoke,
    random_token_dropping,
    regular_orientation,
    sensor_network_orientation,
    token_dropping_smoke,
    two_cliques_bottleneck,
    uniform_assignment,
)

__all__ = [
    "bounded_degree_token_dropping",
    "caterpillar_orientation",
    "datacenter_assignment",
    "figure2_game",
    "hard_matching_bipartite",
    "layered_dag_orientation",
    "long_path_orientation",
    "orientation_smoke",
    "random_token_dropping",
    "regular_orientation",
    "sensor_network_orientation",
    "token_dropping_smoke",
    "two_cliques_bottleneck",
    "uniform_assignment",
]
