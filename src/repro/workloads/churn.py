"""Seeded churn traces over the named workload scenarios.

The incremental engine (:mod:`repro.core.orientation.incremental`) is
exercised and benchmarked on *traces*: sequences of valid deltas applied
to a solved instance.  This module generates them reproducibly.

:func:`churn_trace` walks a mirror of the evolving graph (live nodes,
live edge keys, adjacency) so that every emitted delta is valid at its
position in the trace — inserts never duplicate an edge, deletes and
leaves always name a live object, joins always attach to live nodes.
Everything is driven by one ``random.Random(seed)`` over
deterministically ordered structures, so a (instance, seed, mix) triple
always yields the same trace.

Mixes model the churn stories of the paper's introduction:

* :data:`ARRIVALS_MIX` — a growing system: customers/servers joining and
  new candidate edges appearing;
* :data:`DEPARTURES_MIX` — a draining system: planned departures and
  edge retirements;
* :data:`FAILURES_MIX` — node failures dominate (a failed server takes
  every incident edge with it);
* :data:`MIXED_MIX` — steady state, all four delta kinds balanced.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Union

from repro.core.orientation.incremental import (
    Delta,
    EdgeDelete,
    EdgeInsert,
    NodeJoin,
    NodeLeave,
)
from repro.core.orientation.problem import OrientationProblem, edge_key
from repro.graphs.compact import CompactGraph
from repro.workloads.scenarios import (
    layered_dag_orientation,
    sensor_network_orientation,
)

#: Relative weights of the four delta kinds, by name.
ChurnMix = Dict[str, float]

ARRIVALS_MIX: ChurnMix = {"insert": 0.35, "delete": 0.05, "join": 0.5, "leave": 0.1}
DEPARTURES_MIX: ChurnMix = {"insert": 0.05, "delete": 0.35, "join": 0.1, "leave": 0.5}
FAILURES_MIX: ChurnMix = {"insert": 0.1, "delete": 0.1, "join": 0.1, "leave": 0.7}
MIXED_MIX: ChurnMix = {"insert": 0.25, "delete": 0.25, "join": 0.25, "leave": 0.25}

MIXES: Dict[str, ChurnMix] = {
    "arrivals": ARRIVALS_MIX,
    "departures": DEPARTURES_MIX,
    "failures": FAILURES_MIX,
    "mixed": MIXED_MIX,
}

_KINDS = ("insert", "delete", "join", "leave")


class _Mirror:
    """Deterministically ordered live-graph mirror for trace generation.

    Nodes and edge keys live in parallel (list, position-dict) pairs so
    uniform sampling and swap-remove are both O(1) and fully determined
    by the construction order.
    """

    def __init__(self, nodes, edges) -> None:
        self.nodes: List = list(nodes)
        self.node_pos = {node: i for i, node in enumerate(self.nodes)}
        self.edges: List = list(edges)
        self.edge_pos = {key: i for i, key in enumerate(self.edges)}
        self.adjacency: Dict[object, set] = {node: set() for node in self.nodes}
        for u, v in self.edges:
            self.adjacency[u].add(v)
            self.adjacency[v].add(u)

    def _drop(self, items, positions, item) -> None:
        i = positions.pop(item)
        last = items.pop()
        if last is not item and last != item:
            items[i] = last
            positions[last] = i

    def add_edge(self, key) -> None:
        self.edge_pos[key] = len(self.edges)
        self.edges.append(key)
        self.adjacency[key[0]].add(key[1])
        self.adjacency[key[1]].add(key[0])

    def remove_edge(self, key) -> None:
        self._drop(self.edges, self.edge_pos, key)
        self.adjacency[key[0]].discard(key[1])
        self.adjacency[key[1]].discard(key[0])

    def add_node(self, node) -> None:
        self.node_pos[node] = len(self.nodes)
        self.nodes.append(node)
        self.adjacency[node] = set()

    def remove_node(self, node) -> None:
        for other in sorted(self.adjacency[node], key=repr):
            self.remove_edge(edge_key(node, other))
        self._drop(self.nodes, self.node_pos, node)
        del self.adjacency[node]


def churn_trace(
    instance: Union[OrientationProblem, CompactGraph],
    *,
    num_updates: int,
    seed: int = 0,
    mix: Union[str, ChurnMix] = "mixed",
    attach_degree: int = 3,
    min_nodes: int = 2,
) -> List[Delta]:
    """A reproducible list of ``num_updates`` valid deltas for ``instance``.

    Parameters
    ----------
    instance:
        The starting graph (reference or compact form — the trace only
        depends on its node/edge sets, which agree between the two).
    mix:
        A mix name from :data:`MIXES` or an explicit kind->weight dict.
    attach_degree:
        Upper bound on how many attach edges a :class:`NodeJoin` carries
        (the actual count is sampled per join, 0 included).
    min_nodes:
        Departures are suppressed once the live graph is this small, so
        a leave-heavy mix cannot drain the instance to nothing.
    """
    if isinstance(mix, str):
        mix = MIXES[mix]
    if isinstance(instance, CompactGraph):
        mirror = _Mirror(instance.node_ids, instance.edge_keys())
    else:
        mirror = _Mirror(instance.nodes, instance.edges)

    rng = random.Random(seed)
    kinds = [kind for kind in _KINDS if mix.get(kind, 0.0) > 0.0]
    weights = [mix[kind] for kind in kinds]
    trace: List[Delta] = []
    joined = 0

    def try_insert() -> Optional[Delta]:
        if len(mirror.nodes) < 2:
            return None
        for _ in range(30):
            u, v = rng.sample(mirror.nodes, 2)
            if v in mirror.adjacency[u]:
                continue
            key = edge_key(u, v)
            mirror.add_edge(key)
            return EdgeInsert(key[0], key[1])
        return None

    def try_delete() -> Optional[Delta]:
        if not mirror.edges:
            return None
        key = mirror.edges[rng.randrange(len(mirror.edges))]
        mirror.remove_edge(key)
        return EdgeDelete(key[0], key[1])

    def try_join() -> Optional[Delta]:
        nonlocal joined
        node = ("churn", joined)
        joined += 1
        cap = min(attach_degree, len(mirror.nodes))
        attach = tuple(rng.sample(mirror.nodes, rng.randint(0, cap)))
        mirror.add_node(node)
        for other in attach:
            mirror.add_edge(edge_key(node, other))
        return NodeJoin(node, attach)

    def try_leave() -> Optional[Delta]:
        if len(mirror.nodes) <= min_nodes:
            return None
        node = mirror.nodes[rng.randrange(len(mirror.nodes))]
        mirror.remove_node(node)
        return NodeLeave(node)

    makers = {
        "insert": try_insert,
        "delete": try_delete,
        "join": try_join,
        "leave": try_leave,
    }

    for _ in range(num_updates):
        kind = rng.choices(kinds, weights)[0]
        # A kind can be momentarily infeasible (no edge left to delete,
        # graph at the min_nodes floor, dense enough that insert sampling
        # gives up); fall through the remaining kinds deterministically
        # so the trace always has exactly num_updates deltas.
        start = _KINDS.index(kind)
        delta = None
        for offset in range(len(_KINDS)):
            delta = makers[_KINDS[(start + offset) % len(_KINDS)]]()
            if delta is not None:
                break
        if delta is None:  # pragma: no cover - needs an unreachable state
            raise RuntimeError("no feasible delta kind; instance too degenerate")
        trace.append(delta)
    return trace


#: Fixed parameters of the churn perf-regression smoke scenario: the
#: same E1 layered-DAG family as the orientation gate at a mid size
#: (~720 nodes), plus a fixed mixed trace.  ``benchmarks/bench_churn.py``
#: times this exact replay and commits the medians to
#: ``BENCH_churn.json``; ``scripts/check_bench_regression.py`` re-times
#: it in CI — including the incremental-vs-scratch ratio floor that
#: catches a silent full-recompute fallback.
CHURN_SMOKE_PARAMS = dict(num_levels=12, width=60, edge_probability=0.05, seed=11)
CHURN_SMOKE_TRACE = dict(num_updates=150, seed=13, mix="mixed")


def churn_smoke(*, compact: bool = False):
    """The fixed mid-size instance the churn perf gate replays."""
    return layered_dag_orientation(**CHURN_SMOKE_PARAMS, compact=compact)


def churn_smoke_trace(instance) -> List[Delta]:
    """The fixed trace the churn perf gate replays over :func:`churn_smoke`."""
    return churn_trace(instance, **CHURN_SMOKE_TRACE)


def edge_flap_trace(
    instance: Union[OrientationProblem, CompactGraph],
    *,
    num_updates: int,
    seed: int = 0,
) -> List[Delta]:
    """Link flaps: delete-then-reinsert pairs over the existing edge set.

    The serving point-update workload — no joins or leaves, so per-delta
    mutation is cheap and the cost of a served update is dominated by
    per-request overhead (the thing coalescing amortizes).  With an even
    ``num_updates`` every deleted edge is immediately restored, so the
    trace is *edge-set preserving*: it can be replayed repeatedly against
    the same live engine, which is what lets the serve perf gate time a
    persistent server instead of paying setup inside the timed region.
    """
    if isinstance(instance, CompactGraph):
        keys = list(instance.edge_keys())
    else:
        keys = list(instance.edges)
    if not keys:
        raise ValueError("edge_flap_trace needs an instance with edges")
    rng = random.Random(seed)
    trace: List[Delta] = []
    while len(trace) < num_updates:
        u, v = keys[rng.randrange(len(keys))]
        trace.append(EdgeDelete(u, v))
        if len(trace) < num_updates:
            trace.append(EdgeInsert(u, v))
    return trace


#: Fixed parameters of the serve perf-regression scenario: a small
#: sensor-network instance (64 nodes) where per-delta engine work is a
#: few microseconds, so a served update's cost is dominated by the
#: per-request overhead that batch coalescing amortizes — the regime the
#: serving layer exists for.  ``benchmarks/bench_serve.py`` times the
#: coalesced closed-loop replay and commits it to ``BENCH_serve.json``;
#: ``scripts/check_bench_regression.py --suite serve`` re-times it and
#: enforces the coalesced-vs-naive ratio floor.
SERVE_SMOKE_PARAMS = dict(num_nodes=64, max_degree=4, density=0.1, seed=3)
SERVE_SMOKE_TRACE = dict(num_updates=512, seed=17)


def serve_smoke() -> CompactGraph:
    """The fixed small instance the serve perf gate serves."""
    return sensor_network_orientation(**SERVE_SMOKE_PARAMS, compact=True)


def serve_smoke_trace(instance) -> List[Delta]:
    """The fixed edge-flap trace the serve perf gate replays."""
    return edge_flap_trace(instance, **SERVE_SMOKE_TRACE)
