"""Text and DOT rendering of games, orientations, and assignments."""

from repro.render.ascii_art import (
    load_bar_chart,
    render_assignment,
    render_layered_game,
    render_orientation,
    render_traversals,
)
from repro.render.dot import orientation_to_dot, token_dropping_to_dot

__all__ = [
    "load_bar_chart",
    "orientation_to_dot",
    "render_assignment",
    "render_layered_game",
    "render_orientation",
    "render_traversals",
    "token_dropping_to_dot",
]
