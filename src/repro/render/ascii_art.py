"""Plain-text rendering of game states and orientations.

The paper's figures (stable orientation examples, the token dropping game,
traversals and tails) are reproduced programmatically; these helpers turn
the corresponding data structures into terminal-friendly text, which the
examples and the CLI print.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional

from repro.core.assignment.problem import Assignment
from repro.core.orientation.problem import Orientation
from repro.core.token_dropping.game import TokenDroppingInstance
from repro.core.token_dropping.traversal import TokenDroppingSolution

NodeId = Hashable


def render_layered_game(
    instance: TokenDroppingInstance, occupied: Optional[Iterable[NodeId]] = None
) -> str:
    """Render a layered game level by level; occupied nodes are marked ``[*]``.

    ``occupied`` defaults to the instance's initial token placement; pass a
    solution's destinations to show the final configuration.
    """
    occupied_set = set(instance.tokens if occupied is None else occupied)
    lines: List[str] = []
    for level in range(instance.height, -1, -1):
        cells = []
        for node in instance.graph.nodes_at_level(level):
            marker = "*" if node in occupied_set else " "
            cells.append(f"[{marker}] {node}")
        lines.append(
            f"level {level:>2}: " + "   ".join(cells)
            if cells
            else f"level {level:>2}: (empty)"
        )
    return "\n".join(lines)


def render_traversals(
    solution: TokenDroppingSolution, include_tails: bool = False
) -> str:
    """One line per token: its traversal (and optionally its extended traversal)."""
    lines: List[str] = []
    for token in sorted(solution.traversals, key=repr):
        traversal = solution.traversals[token]
        path = " -> ".join(str(node) for node in traversal.path)
        line = f"token {token}: {path}  ({traversal.length} move(s))"
        if include_tails:
            extended = solution.extended_traversal(token)
            tail = extended[len(traversal.path):]
            if tail:
                line += "  tail: " + " -> ".join(str(node) for node in tail)
        lines.append(line)
    return "\n".join(lines) if lines else "(no tokens)"


def render_orientation(orientation: Orientation) -> str:
    """One line per edge plus a load summary; unhappy edges are flagged."""
    lines: List[str] = []
    for tail, head in orientation.oriented_edges():
        status = "ok" if orientation.is_happy(tail, head) else "UNHAPPY"
        lines.append(
            f"{tail} -> {head}   load({tail})={orientation.load(tail)} "
            f"load({head})={orientation.load(head)}   [{status}]"
        )
    for key in orientation.unoriented_edges():
        lines.append(f"{key[0]} -- {key[1]}   [unoriented]")
    loads = orientation.loads()
    lines.append(
        "loads: "
        + ", ".join(
            f"{node}={load}"
            for node, load in sorted(loads.items(), key=lambda kv: repr(kv[0]))
        )
    )
    return "\n".join(lines)


def render_assignment(assignment: Assignment, max_rows: int = 50) -> str:
    """Customer → server listing plus a load histogram."""
    lines: List[str] = []
    choices = assignment.choices()
    for index, customer in enumerate(sorted(choices, key=repr)):
        if index >= max_rows:
            lines.append(f"... ({len(choices) - max_rows} more customers)")
            break
        lines.append(f"{customer} -> {choices[customer]}")
    histogram: dict = {}
    for load in assignment.loads().values():
        histogram[load] = histogram.get(load, 0) + 1
    lines.append(
        "server load histogram: "
        + ", ".join(f"{load}:{count}" for load, count in sorted(histogram.items()))
    )
    return "\n".join(lines)


def load_bar_chart(loads: dict, width: int = 40) -> str:
    """A horizontal bar chart of server loads (one row per server)."""
    if not loads:
        return "(no servers)"
    peak = max(loads.values()) or 1
    lines = []
    for server in sorted(loads, key=repr):
        load = loads[server]
        bar = "#" * max(0, round(width * load / peak))
        lines.append(f"{str(server):>12} | {bar} {load}")
    return "\n".join(lines)
