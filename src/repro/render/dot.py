"""Graphviz DOT export for instances, orientations, and solutions.

The exported text can be rendered with any Graphviz installation
(``dot -Tpdf``); no Graphviz dependency is needed to *produce* it, so the
library stays pure-Python.  Used by the CLI's ``--dot`` options.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.core.orientation.problem import Orientation
from repro.core.token_dropping.game import TokenDroppingInstance
from repro.core.token_dropping.traversal import TokenDroppingSolution

NodeId = Hashable


def _quote(value: object) -> str:
    text = str(value).replace('"', '\\"')
    return f'"{text}"'


def token_dropping_to_dot(
    instance: TokenDroppingInstance, solution: Optional[TokenDroppingSolution] = None
) -> str:
    """DOT digraph of a layered game; traversed edges are highlighted.

    Nodes are ranked by level (same-level nodes share a rank), initial
    token holders are filled, and -- when a solution is given -- the edges
    used by traversals are drawn bold/coloured and final destinations are
    double-circled.
    """
    consumed = solution.consumed_edges() if solution is not None else frozenset()
    destinations = solution.destinations if solution is not None else frozenset()
    lines = ["digraph token_dropping {", "  rankdir=TB;", "  node [shape=circle];"]

    for level in range(instance.height, -1, -1):
        nodes = instance.graph.nodes_at_level(level)
        if not nodes:
            continue
        lines.append(
            "  { rank=same; " + " ".join(_quote(n) + ";" for n in nodes) + " }"
        )
        for node in nodes:
            attributes = []
            if node in instance.tokens:
                attributes.append("style=filled")
                attributes.append("fillcolor=gray80")
            if node in destinations:
                attributes.append("shape=doublecircle")
            attr_text = f" [{', '.join(attributes)}]" if attributes else ""
            lines.append(f"  {_quote(node)}{attr_text};")

    for child, parent in sorted(instance.graph.edges, key=repr):
        attributes = []
        if (child, parent) in consumed:
            attributes.append("color=orange")
            attributes.append("penwidth=2.5")
        attr_text = f" [{', '.join(attributes)}]" if attributes else ""
        lines.append(f"  {_quote(parent)} -> {_quote(child)}{attr_text};")

    lines.append("}")
    return "\n".join(lines)


def orientation_to_dot(orientation: Orientation) -> str:
    """DOT digraph of an orientation; labels include loads, unhappy edges red."""
    lines = ["digraph orientation {", "  node [shape=circle];"]
    for node in orientation.problem.nodes:
        label = f"{node}\\nload={orientation.load(node)}"
        lines.append(f"  {_quote(node)} [label={_quote(label)}];")
    for tail, head in orientation.oriented_edges():
        attributes = []
        if not orientation.is_happy(tail, head):
            attributes.append("color=red")
            attributes.append("penwidth=2.5")
        attr_text = f" [{', '.join(attributes)}]" if attributes else ""
        lines.append(f"  {_quote(tail)} -> {_quote(head)}{attr_text};")
    for u, v in orientation.unoriented_edges():
        lines.append(f"  {_quote(u)} -> {_quote(v)} [dir=none, style=dashed];")
    lines.append("}")
    return "\n".join(lines)
