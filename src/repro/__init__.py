"""Reproduction of *Efficient Load-Balancing through Distributed Token Dropping*.

This package reproduces the algorithms, bounds, and constructions of

    Sebastian Brandt, Barbara Keller, Joel Rybicki, Jukka Suomela, Jara Uitto.
    "Efficient Load-Balancing through Distributed Token Dropping." SPAA 2021.
    (arXiv:2005.07761)

The package is organised as follows:

``repro.local_model``
    A synchronous LOCAL-model simulator: per-node state machines exchanging
    messages in rounds, with exact round and message accounting.  All
    distributed algorithms in this package are expressed as
    :class:`~repro.local_model.node.NodeAlgorithm` subclasses and executed
    by :class:`~repro.local_model.runner.Runner`.

``repro.graphs``
    Graph substrates: layered DAG instances for the token dropping game,
    bipartite customer--server graphs, hypergraphs, per-edge orientation
    state, and generators for the instance families used throughout the
    paper (d-regular graphs, perfect d-ary trees, random bipartite
    workloads, ...).

``repro.core``
    The paper's contributions:

    * ``core.token_dropping`` -- the token dropping game, the O(L·Δ²)
      proposal algorithm (Theorem 4.1), the O(Δ) height-3 algorithm
      (Theorem 4.7), greedy baselines, and the hypergraph generalisation
      (Theorem 7.1).
    * ``core.orientation`` -- stable orientations: the phase-based O(Δ⁴)
      algorithm (Theorem 5.1), the centralized sequential flip algorithm,
      and a Czygrinow-style repair baseline.
    * ``core.assignment`` -- stable assignments on customer--server
      hypergraphs: the O(C·S⁴) algorithm (Theorem 7.3), the k-bounded
      relaxation and its O(C·S²) algorithm (Theorem 7.5), and
      semi-matching costs with exact optimal semi-matching for measuring
      the 2-approximation claim.

``repro.lower_bounds``
    The instance constructions behind the paper's lower bounds
    (Theorems 4.6, 6.3, 7.4) and indistinguishability utilities.

``repro.analysis``
    Experiment harness: parameter sweeps, growth-exponent fitting, and
    plain-text table reporting used by the benchmark suite and
    EXPERIMENTS.md.

``repro.workloads``
    Named, reproducible workload scenarios used by the examples and
    benchmarks.

``repro.serve``
    A long-lived asyncio serving layer over one solved orientation:
    point queries from flat arrays, coalesced update batches, and
    snapshot/restore of the full serving state.

Public facade
-------------
The three facade entry points of :mod:`repro.api` are re-exported here
(lazily), together with the incremental engine and its delta types::

    import repro

    instance = repro.Instance.build("layered", num_levels=8, width=20, seed=3)
    solved = repro.solve(instance, seed=3)
    engine = solved.dynamic()
    engine.apply(repro.EdgeInsert((0, 1), (1, 2)))
"""

from repro._version import __version__

#: Facade names resolved lazily (PEP 562) so ``import repro`` stays cheap
#: for subsystems (``repro.obs``, kernels) that never touch the facade.
_FACADE_EXPORTS = {
    "Instance": "repro.api",
    "Solved": "repro.api",
    "solve": "repro.api",
    "DynamicOrientation": "repro.core.orientation.incremental",
    "Delta": "repro.core.orientation.incremental",
    "EdgeInsert": "repro.core.orientation.incremental",
    "EdgeDelete": "repro.core.orientation.incremental",
    "NodeJoin": "repro.core.orientation.incremental",
    "NodeLeave": "repro.core.orientation.incremental",
}

__all__ = ["__version__", *sorted(_FACADE_EXPORTS)]


def __getattr__(name: str):
    module_name = _FACADE_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_FACADE_EXPORTS))
