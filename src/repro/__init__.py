"""Reproduction of *Efficient Load-Balancing through Distributed Token Dropping*.

This package reproduces the algorithms, bounds, and constructions of

    Sebastian Brandt, Barbara Keller, Joel Rybicki, Jukka Suomela, Jara Uitto.
    "Efficient Load-Balancing through Distributed Token Dropping." SPAA 2021.
    (arXiv:2005.07761)

The package is organised as follows:

``repro.local_model``
    A synchronous LOCAL-model simulator: per-node state machines exchanging
    messages in rounds, with exact round and message accounting.  All
    distributed algorithms in this package are expressed as
    :class:`~repro.local_model.node.NodeAlgorithm` subclasses and executed
    by :class:`~repro.local_model.runner.Runner`.

``repro.graphs``
    Graph substrates: layered DAG instances for the token dropping game,
    bipartite customer--server graphs, hypergraphs, per-edge orientation
    state, and generators for the instance families used throughout the
    paper (d-regular graphs, perfect d-ary trees, random bipartite
    workloads, ...).

``repro.core``
    The paper's contributions:

    * ``core.token_dropping`` -- the token dropping game, the O(L·Δ²)
      proposal algorithm (Theorem 4.1), the O(Δ) height-3 algorithm
      (Theorem 4.7), greedy baselines, and the hypergraph generalisation
      (Theorem 7.1).
    * ``core.orientation`` -- stable orientations: the phase-based O(Δ⁴)
      algorithm (Theorem 5.1), the centralized sequential flip algorithm,
      and a Czygrinow-style repair baseline.
    * ``core.assignment`` -- stable assignments on customer--server
      hypergraphs: the O(C·S⁴) algorithm (Theorem 7.3), the k-bounded
      relaxation and its O(C·S²) algorithm (Theorem 7.5), and
      semi-matching costs with exact optimal semi-matching for measuring
      the 2-approximation claim.

``repro.lower_bounds``
    The instance constructions behind the paper's lower bounds
    (Theorems 4.6, 6.3, 7.4) and indistinguishability utilities.

``repro.analysis``
    Experiment harness: parameter sweeps, growth-exponent fitting, and
    plain-text table reporting used by the benchmark suite and
    EXPERIMENTS.md.

``repro.workloads``
    Named, reproducible workload scenarios used by the examples and
    benchmarks.
"""

from repro._version import __version__

__all__ = ["__version__"]
