"""``repro.parallel`` — shared-memory parallel phase games.

The phase-based stable orientation algorithm (Theorem 5.1) is
embarrassingly parallel *within* a phase: the per-phase token dropping
game decomposes into connected components that never exchange messages,
so each component's propose/grant/leave rounds, round count, and consumed
edge set are exactly what they would be in the whole-game run.  This
module exploits that:

* the instance's CSR buffers are exported once into POSIX shared memory
  (:meth:`~repro.graphs.compact.CompactGraph.to_shm`) and mapped
  zero-copy by a persistent pool of worker processes — the ~8 bytes/slot
  of array payload never crosses a pipe;
* each phase, the master partitions the game-edge frontier into
  connected components (union–find over the participating nodes — cost
  proportional to the frontier, never to ``n`` or ``m``), writes the
  frontier's ``heads``/``load`` entries into a small shared side
  segment, and dispatches component batches carrying only edge ids;
* workers rebuild each component's sub-game from the shared arrays
  (local dense ids in ascending global order), solve it with the same
  :func:`~repro.core.token_dropping._kernels.proposal_game_kernel`, and
  return the consumed edges plus round count;
* the master merges in deterministic component order: consumed edges are
  the sorted union (the serial kernel's ascending order), the phase's
  round count is the max over components (components run concurrently in
  the LOCAL model), and maximality violations surface as the lowest
  participant's — bit for bit what the serial kernel produces.

Dispatch
--------
``backend="compact-parallel"`` (or ``REPRO_BACKEND=compact-parallel``) on
:func:`~repro.core.orientation.phases.run_stable_orientation` routes
here; entry points without a parallel path degrade to ``compact``.
``REPRO_WORKERS`` caps the worker count (default: all CPUs), and
instances below ``REPRO_PARALLEL_MIN_EDGES`` edges (default
``50_000``) auto-fall back to the serial kernel — at that size the fork
plus pickle overhead costs more than the games.  Phases whose game is
smaller than ``min_game_edges`` run in the master process through the
identical serial path, so tiny late-phase games never pay a dispatch.

Every run is bit-for-bit identical to ``backend="compact"``; the
cross-validation suite asserts it on 100+ seeded instances.
"""

from __future__ import annotations

import os
import random
from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.graphs.compact import INDEX_TYPECODE, CompactGraph

__all__ = [
    "DEFAULT_MIN_EDGES",
    "DEFAULT_MIN_GAME_EDGES",
    "MIN_EDGES_ENV_VAR",
    "WORKERS_ENV_VAR",
    "PhaseGamePool",
    "parallel_stable_orientation_kernel",
    "resolve_workers",
]

#: Worker-count override; unset means one worker per CPU.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Instance-size floor (edges) below which the serial kernel runs instead.
MIN_EDGES_ENV_VAR = "REPRO_PARALLEL_MIN_EDGES"
DEFAULT_MIN_EDGES = 50_000

#: Per-phase game-size floor (game edges) below which the phase's game is
#: solved in the master process (identical serial code path).
DEFAULT_MIN_GAME_EDGES = 512


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count: argument, ``REPRO_WORKERS``, or CPUs."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV_VAR, "").strip()
        workers = int(env) if env else (os.cpu_count() or 1)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def _resolve_min_edges(min_edges: Optional[int]) -> int:
    if min_edges is None:
        env = os.environ.get(MIN_EDGES_ENV_VAR, "").strip()
        min_edges = int(env) if env else DEFAULT_MIN_EDGES
    return min_edges


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-worker-process state, populated by :func:`_worker_init`.
_WORKER: Dict[str, object] = {}


def _worker_init(graph_meta, aux_name, num_nodes, num_edges, counter) -> None:
    """Pool initializer: claim a worker index, attach the shared arrays.

    Runs before any task: the inherited obs state is reset first
    (:func:`repro.obs.after_fork_in_child`) so even the attach itself
    could be traced safely, then the graph segment and the master-written
    ``heads``/``load`` side segment are mapped zero-copy.
    """
    from multiprocessing import shared_memory

    with counter.get_lock():
        index = counter.value
        counter.value += 1
    obs.after_fork_in_child()
    handle = CompactGraph.attach_shm(graph_meta)
    aux = shared_memory.SharedMemory(name=aux_name)
    raw = memoryview(aux.buf)
    heads = raw[: num_edges * 8].cast(INDEX_TYPECODE)
    loads = raw[num_edges * 8 : (num_edges + num_nodes) * 8].cast(INDEX_TYPECODE)
    _WORKER.update(
        index=index,
        handle=handle,
        graph=handle.graph,
        aux=aux,
        heads=heads,
        loads=loads,
    )


def _solve_component(
    graph: CompactGraph,
    heads,
    loads,
    edges: Sequence[int],
    token_nodes: Sequence[int],
    reprs: Optional[Sequence[str]],
    height: int,
    tie_break: str,
    seed: int,
    check_invariants: bool,
) -> Tuple[List[int], int, Optional[Tuple[int, int]]]:
    """Solve one connected component's game against the shared arrays.

    ``edges`` are ascending global edge ids; local game ids are assigned
    in ascending global-node order, which makes the sub-game's CSR, tie
    ranks, and round schedule identical to the component's slice of the
    serial whole-game run.  Returns ``(consumed_edges, rounds,
    violation)`` with ``violation`` the first maximality offence as dense
    ``(token_node, child_node)`` — the master formats the error with the
    original ids, which workers deliberately do not have.
    """
    from repro.core.token_dropping._kernels import (
        game_from_arrays,
        proposal_game_kernel,
    )

    eu = graph.edge_u
    ev = graph.edge_v
    game_edges: List[Tuple[int, int, int]] = []
    sub: Dict[int, int] = {}
    for e in edges:
        h = heads[e]
        t = eu[e] if h == ev[e] else ev[e]
        game_edges.append((t, h, e))
        sub.setdefault(t, 0)
        sub.setdefault(h, 0)
    participants = sorted(sub)
    for i, g in enumerate(participants):
        sub[g] = i

    has_token = bytearray(len(participants))
    for node in token_nodes:
        has_token[sub[node]] = 1
    game, payloads = game_from_arrays(
        len(participants),
        has_token,
        [loads[g] for g in participants],
        [(sub[t], sub[h], e) for t, h, e in game_edges],
    )
    par_ptr, chi_ptr = game.par_ptr, game.chi_ptr
    game_degree = 0
    for i in range(len(participants)):
        degree = par_ptr[i + 1] - par_ptr[i] + chi_ptr[i + 1] - chi_ptr[i]
        if degree > game_degree:
            game_degree = degree
    # Same Theorem 4.1 budget as the serial kernel: the global height with
    # the component's degree — a component degree never exceeds the whole
    # game's, so this budget is at most the serial one and the component
    # run (a restriction of the serial run) always fits it.
    max_rounds = 3 * (8 * (height + 1) * (game_degree + 1) ** 2 + 8)
    _, final_token, _, _, consumed, engine = proposal_game_kernel(
        game,
        max_rounds,
        tie_break=tie_break,
        rngs=[random.Random(f"{seed}:{r}") for r in reprs]
        if reprs is not None
        else None,
        count_messages=False,
    )

    violation: Optional[Tuple[int, int]] = None
    if check_invariants:
        chi_node, chi_edge = game.chi_node, game.chi_edge
        for i in range(len(participants)):
            if final_token[i] < 0:
                continue
            for s in range(chi_ptr[i], chi_ptr[i + 1]):
                if not consumed[chi_edge[s]] and final_token[chi_node[s]] < 0:
                    violation = (participants[i], participants[chi_node[s]])
                    break
            if violation is not None:
                break

    consumed_edges = [payloads[ge] for ge in range(game.num_edges) if consumed[ge]]
    return consumed_edges, engine.rounds, violation


def _run_batch(task):
    """Worker task: solve a batch of components, one result per component."""
    tie_break, seed, height, check_invariants, comps = task
    graph = _WORKER["graph"]
    heads = _WORKER["heads"]
    loads = _WORKER["loads"]
    results = []
    with obs.span(
        "parallel.batch",
        worker=_WORKER["index"],
        components=len(comps),
        edges=sum(len(comp[0]) for comp in comps),
    ):
        for edges, token_nodes, reprs in comps:
            results.append(
                _solve_component(
                    graph,
                    heads,
                    loads,
                    edges,
                    token_nodes,
                    reprs,
                    height,
                    tie_break,
                    seed,
                    check_invariants,
                )
            )
    return results


# ----------------------------------------------------------------------
# Master side
# ----------------------------------------------------------------------
class PhaseGamePool:
    """A persistent worker pool mapping one graph's shared-memory export.

    Owns three resources for the lifetime of one parallel kernel run: the
    graph segment (read-only for everyone), a ``heads``+``load`` side
    segment the master updates with each phase's frontier entries, and a
    ``ProcessPoolExecutor`` whose workers attached both in their
    initializer.  ``close()`` tears all of it down and unlinks the
    segments; a crashed worker surfaces as ``BrokenProcessPool`` from the
    in-flight phase and the segments are still reclaimed.
    """

    def __init__(self, graph: CompactGraph, workers: Optional[int] = None):
        import multiprocessing as mp
        from concurrent.futures import ProcessPoolExecutor
        from multiprocessing import shared_memory

        self.graph = graph
        self.workers = resolve_workers(workers)
        n = graph.num_nodes
        m = graph.num_edges
        self._export = graph.to_shm()
        self._aux = shared_memory.SharedMemory(create=True, size=max((n + m) * 8, 1))
        raw = memoryview(self._aux.buf)
        self._aux_views = [raw]
        self.shm_heads = raw[: m * 8].cast(INDEX_TYPECODE)
        self.shm_loads = raw[m * 8 : (m + n) * 8].cast(INDEX_TYPECODE)
        self._aux_views += [self.shm_heads, self.shm_loads]

        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(method)
        counter = ctx.Value("l", 0)
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=ctx,
            initializer=_worker_init,
            initargs=(self._export.meta, self._aux.name, n, m, counter),
        )
        self._closed = False

    def run_components(self, tasks) -> List:
        """Run batches on the pool; results in submission (batch) order."""
        return list(self._executor.map(_run_batch, tasks))

    def close(self) -> None:
        """Shut the pool down and unlink both segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=True)
        for view in reversed(self._aux_views):
            view.release()
        self._aux_views = ()
        self.shm_heads = self.shm_loads = None
        self._aux.close()
        try:
            self._aux.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        self._export.close()

    def __enter__(self) -> "PhaseGamePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _partition_components(
    game_edge_list: Sequence[int],
    heads: Sequence[int],
    eu: Sequence[int],
    ev: Sequence[int],
) -> Tuple[List[List[int]], Dict[int, int]]:
    """Union–find partition of the phase's game edges into components.

    Cost is proportional to the frontier (the game edges), never to the
    graph.  Returns ``(components, comp_of_node)``: each component is its
    ascending edge-id list, components ordered by smallest member edge —
    a deterministic order for the merge.
    """
    parent: Dict[int, int] = {}

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for e in game_edge_list:
        h = heads[e]
        t = eu[e] if h == ev[e] else ev[e]
        if t not in parent:
            parent[t] = t
        if h not in parent:
            parent[h] = h
        rt, rh = find(t), find(h)
        if rt != rh:
            parent[rh] = rt

    comp_index: Dict[int, int] = {}
    components: List[List[int]] = []
    for e in game_edge_list:
        h = heads[e]
        t = eu[e] if h == ev[e] else ev[e]
        root = find(t)
        idx = comp_index.get(root)
        if idx is None:
            idx = len(components)
            comp_index[root] = idx
            components.append([])
        components[idx].append(e)

    comp_of_node = {node: comp_index[find(node)] for node in parent}
    return components, comp_of_node


def parallel_stable_orientation_kernel(
    graph: CompactGraph,
    *,
    tie_break: str = "min",
    seed: int = 0,
    check_invariants: bool = True,
    max_phases: Optional[int] = None,
    workers: Optional[int] = None,
    min_edges: Optional[int] = None,
    min_game_edges: int = DEFAULT_MIN_GAME_EDGES,
) -> Tuple[List[int], List[int], int, int, int, List]:
    """The ``compact-parallel`` stable orientation kernel.

    Drop-in for :func:`~repro.core.orientation._kernels.
    stable_orientation_kernel` with identical output: the phase driver
    runs unchanged in this process; only each phase's token dropping game
    is partitioned by connected component and farmed out to the pool.
    Falls back to the serial kernel outright when the instance is smaller
    than ``min_edges`` or only one worker is available.
    """
    from repro.core.orientation._kernels import (
        _solve_phase_game_serial,
        stable_orientation_kernel,
    )
    from repro.core.token_dropping.traversal import InvalidSolutionError

    workers = resolve_workers(workers)
    min_edges = _resolve_min_edges(min_edges)
    serial_kwargs = dict(
        tie_break=tie_break,
        seed=seed,
        check_invariants=check_invariants,
        max_phases=max_phases,
    )
    if workers <= 1 or graph.num_edges < min_edges:
        return stable_orientation_kernel(graph, **serial_kwargs)

    eu = graph.edge_u
    ev = graph.edge_v
    ids = graph.node_ids
    sub = [-1] * graph.num_nodes  # serial-fallback scratch (small phases)
    random_ties = tie_break == "random"

    with PhaseGamePool(graph, workers=workers) as pool:
        shm_heads = pool.shm_heads
        shm_loads = pool.shm_loads

        def solver(game_edge_list, accepted_edge, heads, load, height):
            if not game_edge_list:
                # An empty game halts at round 0 with nothing consumed.
                return [], 0
            if len(game_edge_list) < min_game_edges:
                return _solve_phase_game_serial(
                    eu,
                    ev,
                    ids,
                    sub,
                    load,
                    heads,
                    game_edge_list,
                    accepted_edge,
                    height,
                    tie_break,
                    seed,
                    check_invariants,
                )

            components, comp_of_node = _partition_components(
                game_edge_list, heads, eu, ev
            )
            # Sync exactly the entries workers will read: the game edges'
            # heads and the participants' loads — O(frontier) writes.
            for e in game_edge_list:
                shm_heads[e] = heads[e]
            for node in comp_of_node:
                shm_loads[node] = load[node]

            tokens: List[List[int]] = [[] for _ in components]
            for node in accepted_edge:
                idx = comp_of_node.get(node)
                if idx is not None:
                    tokens[idx].append(node)
            reprs: List[Optional[List[str]]] = [None] * len(components)
            if random_ties:
                members: List[List[int]] = [[] for _ in components]
                for node, idx in comp_of_node.items():
                    members[idx].append(node)
                reprs = [
                    [repr(ids[g]) for g in sorted(nodes)] for nodes in members
                ]

            # Contiguous batches balanced by edge count: results come back
            # in component order with no reordering bookkeeping.
            num_batches = min(len(components), pool.workers * 2)
            share = len(game_edge_list) / num_batches
            tasks = []
            batch: List = []
            batched_edges = 0
            for idx, comp in enumerate(components):
                batch.append(
                    (array(INDEX_TYPECODE, comp), tokens[idx], reprs[idx])
                )
                batched_edges += len(comp)
                if batched_edges >= share * (len(tasks) + 1) and len(
                    tasks
                ) < num_batches - 1:
                    tasks.append(
                        (tie_break, seed, height, check_invariants, batch)
                    )
                    batch = []
            if batch:
                tasks.append((tie_break, seed, height, check_invariants, batch))
            if obs.enabled():
                obs.add("orientation.parallel.components", len(components))
                obs.add("orientation.parallel.batches", len(tasks))
                obs.add(
                    "orientation.parallel.dispatched_edges", len(game_edge_list)
                )

            consumed_edges: List[int] = []
            rounds = 0
            violation = None
            for batch_result in pool.run_components(tasks):
                for comp_consumed, comp_rounds, comp_violation in batch_result:
                    consumed_edges.extend(comp_consumed)
                    if comp_rounds > rounds:
                        rounds = comp_rounds
                    if comp_violation is not None and (
                        violation is None or comp_violation[0] < violation[0]
                    ):
                        violation = comp_violation
            if violation is not None:
                # The serial kernel reports the first violating
                # participant in ascending dense order — so does this.
                raise InvalidSolutionError(
                    f"not maximal: token at {ids[violation[0]]!r} can "
                    f"still move to {ids[violation[1]]!r}"
                )
            consumed_edges.sort()  # the serial kernel's ascending order
            return consumed_edges, rounds

        return stable_orientation_kernel(
            graph, phase_game_solver=solver, **serial_kwargs
        )
