"""``repro.api`` — the unified public facade.

Three steps cover the whole library surface for most users::

    import repro

    instance = repro.Instance.build("layered", num_levels=8, width=20, seed=3)
    solved = repro.solve(instance, algorithm="repair", seed=3)
    engine = solved.dynamic()          # absorb churn, serve queries

:class:`Instance` wraps a compact CSR graph (built from a named workload
family, an edge list/stream, or an existing
:class:`~repro.graphs.compact.CompactGraph`); :func:`solve` runs one of
the paper's stable-orientation algorithms under the usual
backend-dispatch rule and returns a :class:`Solved` holding the *flat*
``heads``/``load`` arrays; :meth:`Solved.dynamic` enters the incremental
engine through the trusted constructor — no re-solve, no dict
round-trip.  The serving layer (:mod:`repro.serve`) and the examples are
built entirely on these entry points.

The historical per-module entry points
(:func:`~repro.core.orientation.phases.run_stable_orientation`,
:func:`~repro.core.orientation.repair.synchronous_repair_orientation`,
:func:`~repro.core.orientation.bounded.run_bounded_stable_orientation`)
are unchanged — this module delegates to them; they remain the
reference-validated core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.core.orientation.incremental import DynamicOrientation
from repro.dispatch import resolve_backend
from repro.graphs.compact import CompactGraph

NodeId = Hashable

__all__ = ["ALGORITHMS", "Instance", "Solved", "solve"]

#: The algorithm names :func:`solve` accepts.
ALGORITHMS = ("repair", "phases", "bounded")


class Instance:
    """An orientation instance in compact CSR form (the facade's input).

    Thin and immutable: ``graph`` is the wrapped
    :class:`~repro.graphs.compact.CompactGraph`.  Constructors cover the
    common sources; :meth:`build` routes through the named
    scenario-family registry of :mod:`repro.workloads.scenarios`.
    """

    __slots__ = ("graph",)

    def __init__(self, graph: CompactGraph) -> None:
        if not isinstance(graph, CompactGraph):
            raise TypeError(
                "Instance wraps a CompactGraph; use Instance.build(...) / "
                "from_edges(...) / from_problem(...) to construct one"
            )
        self.graph = graph

    # -- constructors ---------------------------------------------------
    @classmethod
    def build(cls, family: str, **params) -> "Instance":
        """Build a named workload family (see :meth:`families`)."""
        from repro.workloads.scenarios import build_orientation_instance

        return cls(build_orientation_instance(family, **params))

    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple[NodeId, NodeId]], nodes: Iterable[NodeId] = ()
    ) -> "Instance":
        return cls(CompactGraph.from_edges(edges, nodes=nodes))

    @classmethod
    def from_edge_stream(
        cls, edges: Iterable[Tuple[NodeId, NodeId]], nodes: Iterable[NodeId] = ()
    ) -> "Instance":
        return cls(CompactGraph.from_edge_stream(edges, nodes=nodes))

    @classmethod
    def from_problem(cls, problem) -> "Instance":
        """Intern a reference :class:`OrientationProblem` (lossless)."""
        return cls(CompactGraph.from_orientation_problem(problem))

    @staticmethod
    def families() -> Tuple[str, ...]:
        """The registered scenario-family names, sorted."""
        from repro.workloads.scenarios import ORIENTATION_FAMILIES

        return tuple(sorted(ORIENTATION_FAMILIES))

    # -- queries --------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Instance(nodes={self.num_nodes}, edges={self.num_edges})"


@dataclass(frozen=True)
class Solved:
    """A solved orientation as flat arrays plus its provenance.

    ``heads[e]`` is the dense head of edge ``e`` of ``instance.graph``;
    ``load[i]`` the indegree of dense node ``i``.  ``result`` carries the
    underlying algorithm's stats/result object (``RepairRunStats``,
    ``StableOrientationResult``, or ``BoundedOrientationResult``).
    """

    instance: Instance
    algorithm: str
    backend: str
    seed: int
    heads: List[int]
    load: List[int]
    result: object = None

    # -- queries --------------------------------------------------------
    def loads(self) -> Dict[NodeId, int]:
        ids = self.instance.graph.node_ids
        return {ids[i]: self.load[i] for i in range(len(self.load))}

    def head_of(self, u: NodeId, v: NodeId) -> NodeId:
        graph = self.instance.graph
        return graph.node_ids[self.heads[graph.edge_index(u, v)]]

    def max_load(self) -> int:
        return max(self.load, default=0)

    def is_stable(self) -> bool:
        """The badness-1 stability check, O(m) over the flat arrays."""
        graph = self.instance.graph
        eu, ev = graph.edge_u, graph.edge_v
        load = self.load
        for e, h in enumerate(self.heads):
            t = eu[e] if h == ev[e] else ev[e]
            if load[h] - load[t] > 1:
                return False
        return True

    # -- the trusted handoff -------------------------------------------
    def dynamic(self, *, validate: bool = True) -> DynamicOrientation:
        """Enter the incremental engine without re-solving.

        Wraps the arrays via :meth:`DynamicOrientation.from_solved_arrays`
        (the trusted constructor); requires a strictly stable solve, so a
        ``bounded`` (k-relaxed) result may be rejected.
        """
        return DynamicOrientation.from_solved_arrays(
            self.instance.graph,
            self.heads,
            self.load,
            seed=self.seed,
            validate=validate,
        )


def _heads_from_orientation(graph: CompactGraph, orientation) -> List[int]:
    """Dense heads array of a reference Orientation over ``graph``'s edges."""
    index_of = graph.index_of
    return [
        index_of[orientation.head_of(u, v)] for u, v in graph.edge_keys()
    ]


def _load_from_heads(num_nodes: int, heads: List[int]) -> List[int]:
    load = [0] * num_nodes
    for h in heads:
        load[h] += 1
    return load


def solve(
    instance,
    *,
    algorithm: str = "repair",
    backend: Optional[str] = None,
    seed: int = 0,
    tie_break: str = "min",
    k: int = 2,
    check_invariants: bool = True,
) -> Solved:
    """Solve an instance into a :class:`Solved` flat-array orientation.

    Parameters
    ----------
    instance:
        An :class:`Instance` (or a bare
        :class:`~repro.graphs.compact.CompactGraph`, which is wrapped).
    algorithm:
        ``"repair"`` (the synchronous repair baseline — the engine's
        native solver), ``"phases"`` (the token-dropping phase algorithm,
        Theorem 5.1), or ``"bounded"`` (the k-bounded relaxation; note
        its output is only k-relaxed stable).
    backend:
        The usual dispatch names (``auto``/``compact``/``dict``, plus
        ``compact-parallel`` for ``phases``); on the compact repair path
        the kernel's arrays are returned directly — no dict structure is
        ever built.
    tie_break, k, check_invariants:
        Passed through to the underlying algorithm where applicable.
    """
    if isinstance(instance, CompactGraph):
        instance = Instance(instance)
    if not isinstance(instance, Instance):
        raise TypeError(f"cannot solve {type(instance).__name__}")
    graph = instance.graph

    if algorithm == "repair":
        resolved = resolve_backend(backend)
        if resolved == "compact":
            from repro.core.orientation._kernels import repair_kernel

            heads, load, stats = repair_kernel(graph, seed=seed)
            heads, load = list(heads), list(load)
        else:
            from repro.core.orientation.repair import (
                synchronous_repair_orientation,
            )

            orientation, stats = synchronous_repair_orientation(
                graph.to_orientation_problem(), seed=seed, backend="dict"
            )
            heads = _heads_from_orientation(graph, orientation)
            load = _load_from_heads(graph.num_nodes, heads)
        result = stats
    elif algorithm == "phases":
        from repro.core.orientation.phases import run_stable_orientation

        resolved = resolve_backend(backend, supports_parallel=True)
        result = run_stable_orientation(
            graph,
            tie_break=tie_break,
            seed=seed,
            check_invariants=check_invariants,
            backend=resolved,
        )
        heads = _heads_from_orientation(graph, result.orientation)
        load = _load_from_heads(graph.num_nodes, heads)
    elif algorithm == "bounded":
        from repro.core.orientation.bounded import (
            run_bounded_stable_orientation,
        )

        resolved = resolve_backend(backend)
        result = run_bounded_stable_orientation(
            graph,
            k=k,
            tie_break=tie_break,
            seed=seed,
            check_invariants=check_invariants,
            backend=resolved,
        )
        heads = _heads_from_orientation(graph, result.orientation)
        load = _load_from_heads(graph.num_nodes, heads)
    else:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        )

    return Solved(
        instance=instance,
        algorithm=algorithm,
        backend=resolved,
        seed=seed,
        heads=heads,
        load=load,
        result=result,
    )
