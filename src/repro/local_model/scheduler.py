"""Synchronous round scheduler.

The scheduler owns the mechanics of one synchronous round: draining
outboxes, routing envelopes, building inboxes, and invoking each active
node's ``on_round``.  The :class:`~repro.local_model.runner.Runner` drives
the scheduler until termination and handles round budgets, metrics, and
output collection.

Separating the two keeps the per-round data flow small and testable in
isolation (see ``tests/local_model/test_scheduler.py``).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional

from repro.local_model.messages import Inbox
from repro.local_model.metrics import ExecutionMetrics
from repro.local_model.network import Network
from repro.local_model.node import AlgorithmFactory, NodeAlgorithm, NodeContext
from repro.local_model.trace import ExecutionTrace, NullTrace

NodeId = Hashable


class SynchronousScheduler:
    """Executes synchronous rounds over a fixed set of node state machines.

    Parameters
    ----------
    network:
        The communication topology and local inputs.
    factory:
        Produces one :class:`NodeAlgorithm` per node.
    trace:
        Optional :class:`ExecutionTrace`; defaults to a no-op trace.
    """

    def __init__(
        self,
        network: Network,
        factory: AlgorithmFactory,
        trace: Optional[ExecutionTrace] = None,
    ) -> None:
        self.network = network
        self.trace = trace if trace is not None else NullTrace()
        self.metrics = ExecutionMetrics(total_nodes=len(network))
        self.contexts: Dict[NodeId, NodeContext] = {}
        self.algorithms: Dict[NodeId, NodeAlgorithm] = {}
        # Messages delivered at the *start* of the next round, keyed by receiver.
        self._pending: Dict[NodeId, Dict[NodeId, object]] = {}
        self._round = 0
        self._started = False

        for node_id in network.node_ids:
            ctx = NodeContext(
                node_id=node_id,
                neighbors=network.neighbors(node_id),
                local_input=network.local_input(node_id),
            )
            self.contexts[node_id] = ctx
            self.algorithms[node_id] = factory.create(node_id)

    # ------------------------------------------------------------------
    @property
    def round_number(self) -> int:
        """The number of completed communication rounds."""
        return self._round

    def active_nodes(self) -> Iterable[NodeId]:
        """Identifiers of nodes that have not halted yet."""
        return (nid for nid, ctx in self.contexts.items() if not ctx.halted)

    def all_halted(self) -> bool:
        """True when every node has halted."""
        return all(ctx.halted for ctx in self.contexts.values())

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Run the round-0 initialisation (``on_start``) on every node."""
        if self._started:
            return
        self._started = True
        self.trace.on_round_begin(0)
        for node_id in self.network.node_ids:
            ctx = self.contexts[node_id]
            self.algorithms[node_id].on_start(ctx)
            if ctx.halted:
                self.metrics.record_halt(node_id, 0)
                self.trace.on_halt(0, node_id, ctx.output)
        self._collect_outboxes()

    def step(self) -> None:
        """Execute one synchronous communication round."""
        if not self._started:
            self.start()
        self._round += 1
        self.metrics.rounds = self._round
        self.trace.on_round_begin(self._round)

        delivered, self._pending = self._pending, {}
        for node_id in self.network.node_ids:
            ctx = self.contexts[node_id]
            if ctx.halted:
                continue
            ctx.round_number = self._round
            inbox = Inbox(delivered.get(node_id, {}))
            self.algorithms[node_id].on_round(ctx, inbox)
            if ctx.halted:
                self.metrics.record_halt(node_id, self._round)
                self.trace.on_halt(self._round, node_id, ctx.output)
        self._collect_outboxes()

    def stop(self) -> None:
        """Invoke the ``on_stop`` hook on every algorithm instance."""
        for node_id in self.network.node_ids:
            self.algorithms[node_id].on_stop(self.contexts[node_id])

    # ------------------------------------------------------------------
    def _collect_outboxes(self) -> None:
        """Drain every node's outbox into the pending-delivery buffer."""
        for node_id in self.network.node_ids:
            ctx = self.contexts[node_id]
            outbox = ctx._drain_outbox()
            for receiver, payload in outbox.items():
                receiver_ctx = self.contexts[receiver]
                if receiver_ctx.halted:
                    # Messages to halted nodes cannot affect any output.
                    continue
                self._pending.setdefault(receiver, {})[node_id] = payload
                self.metrics.messages_sent += 1
                self.trace.on_message(self._round, node_id, receiver, payload)
