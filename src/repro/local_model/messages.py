"""Message envelopes and per-node mailboxes.

The LOCAL model allows unbounded message sizes, so payloads are arbitrary
Python objects.  The simulator wraps each payload in an :class:`Envelope`
recording sender, receiver, and the round in which the message was sent;
this is what powers message-count metrics and execution traces.

Mailboxes are deliberately simple: a node receives at most one payload per
neighbour per round (matching how the paper's algorithms communicate), and
sending twice to the same neighbour in one round overwrites the previous
payload.  This mirrors the usual "each node sends one message per edge per
round" convention of the LOCAL model and keeps algorithm code honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterator, Mapping, Tuple

NodeId = Hashable


@dataclass(frozen=True)
class Envelope:
    """A single message in flight.

    Attributes
    ----------
    sender:
        Identifier of the node that produced the message.
    receiver:
        Identifier of the adjacent node the message is addressed to.
    round_sent:
        Round number (0-based) during which the message was produced.  The
        message is delivered at the beginning of round ``round_sent + 1``.
    payload:
        Arbitrary algorithm-defined content.
    """

    sender: NodeId
    receiver: NodeId
    round_sent: int
    payload: Any


@dataclass
class Outbox:
    """Messages produced by one node during the current round.

    The outbox maps neighbour identifier to payload.  It is cleared by the
    scheduler after every round.
    """

    _messages: Dict[NodeId, Any] = field(default_factory=dict)

    def put(self, neighbor: NodeId, payload: Any) -> None:
        """Queue ``payload`` for delivery to ``neighbor`` next round."""
        self._messages[neighbor] = payload

    def items(self) -> Iterator[Tuple[NodeId, Any]]:
        return iter(self._messages.items())

    def clear(self) -> None:
        self._messages.clear()

    def __len__(self) -> int:
        return len(self._messages)

    def __contains__(self, neighbor: NodeId) -> bool:
        return neighbor in self._messages


class Inbox(Mapping[NodeId, Any]):
    """Read-only view of the messages delivered to a node this round.

    Behaves as a mapping from sender identifier to payload.  Algorithms
    should treat it as immutable; the scheduler rebuilds it every round.
    """

    __slots__ = ("_messages",)

    def __init__(self, messages: Dict[NodeId, Any] | None = None) -> None:
        self._messages: Dict[NodeId, Any] = dict(messages or {})

    def __getitem__(self, sender: NodeId) -> Any:
        return self._messages[sender]

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._messages)

    def __len__(self) -> int:
        return len(self._messages)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Inbox({self._messages!r})"

    def senders(self) -> Tuple[NodeId, ...]:
        """Return the senders that delivered a message this round."""
        return tuple(self._messages)

    @staticmethod
    def empty() -> "Inbox":
        """Return a shared empty inbox."""
        return _EMPTY_INBOX


_EMPTY_INBOX = Inbox({})
