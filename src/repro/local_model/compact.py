"""Compact LOCAL-model substrate: interned networks and flat-array rounds.

The reference simulator (:class:`~repro.local_model.scheduler.
SynchronousScheduler`) is the readable correctness oracle: per-node state
machines, per-message dict envelopes, hash-based neighbour sets.  Its hot
loop allocates one inbox and one outbox entry per message per round, which
caps simulated network sizes at toys.

This module is the compact counterpart, mirroring the design of
:mod:`repro.graphs.compact`:

* :class:`CompactNetwork` re-represents a :class:`~repro.local_model.
  network.Network` **once**: node ids (arbitrary Hashables) are interned
  into dense integers in ``repr``-sorted order via
  :func:`repro.graphs.compact.intern_nodes`, and the undirected adjacency
  is stored as CSR over :mod:`array` of signed 64-bit ints.  Because the
  reference algorithms break ties by ``repr`` order, "ascending dense id"
  and "reference tie-break order" coincide, which is what lets int-array
  kernels replay reference executions exactly.
* :class:`CompactEngine` is the batched synchronous round engine: it owns
  the flat per-node state every kernel needs — alive flags, halt rounds,
  the round budget, and the message counter — so a kernel only supplies
  the algorithm-specific phase logic over parallel arrays (requests,
  grants, token positions) instead of per-message objects.

Kernels register on :class:`~repro.local_model.node.AlgorithmFactory`
(``compact_kernel=``) and are dispatched from
:meth:`~repro.local_model.runner.Runner.run` per :mod:`repro.dispatch`;
algorithms without a kernel always take the reference scheduler.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, Hashable, List, Tuple

from repro.graphs.compact import INDEX_TYPECODE, intern_nodes
from repro.local_model.errors import RoundLimitExceeded
from repro.local_model.metrics import ExecutionMetrics
from repro.local_model.network import Network

NodeId = Hashable


class CompactNetwork:
    """An immutable LOCAL-model network in CSR form over dense node ids.

    Attributes
    ----------
    node_ids:
        Dense id → original Hashable id, ``repr``-sorted (the reference
        tie-break order).
    index_of:
        Inverse of ``node_ids``.
    indptr, indices:
        CSR adjacency (``array('q')``): the neighbours of dense node ``i``
        are ``indices[indptr[i]:indptr[i+1]]``, ascending — which is
        ``repr`` order by construction of the interning.
    local_inputs:
        Per dense node, the node's original local input object.
    """

    __slots__ = (
        "node_ids",
        "index_of",
        "indptr",
        "indices",
        "local_inputs",
        "derived",
    )

    def __init__(
        self,
        node_ids: Tuple[NodeId, ...],
        index_of: Dict[NodeId, int],
        indptr: array,
        indices: array,
        local_inputs: List[Any],
    ) -> None:
        self.node_ids = node_ids
        self.index_of = index_of
        self.indptr = indptr
        self.indices = indices
        self.local_inputs = local_inputs
        #: Memo for immutable structures kernels derive from this network
        #: (e.g. the dense token-game adjacency); keyed by kernel family.
        self.derived: Dict[str, Any] = {}

    @classmethod
    def from_network(cls, network: Network) -> "CompactNetwork":
        """Intern a reference :class:`Network` (one O(n + m) pass)."""
        node_ids, index_of = intern_nodes(iter(network))
        indptr = array(INDEX_TYPECODE, [0])
        indices = array(INDEX_TYPECODE)
        local_inputs: List[Any] = []
        total = 0
        for node in node_ids:
            dense = sorted(index_of[x] for x in network.neighbors(node))
            indices.extend(dense)
            total += len(dense)
            indptr.append(total)
            local_inputs.append(network.local_input(node))
        return cls(node_ids, index_of, indptr, indices, local_inputs)

    @classmethod
    def of(cls, network: Network) -> "CompactNetwork":
        """The interned form of ``network``, memoized on the network.

        Networks are immutable, so the compact form is computed at most
        once per network object; repeated executions (round kernels,
        head-to-head benchmarks) reuse it.
        """
        cached = getattr(network, "_compact_cache", None)
        if cached is not None:
            return cached
        compact = cls.from_network(network)
        network._compact_cache = compact
        return compact

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def num_edges(self) -> int:
        return len(self.indices) // 2

    def degree(self, i: int) -> int:
        """Degree of dense node ``i``."""
        return self.indptr[i + 1] - self.indptr[i]

    def neighbors(self, i: int) -> memoryview:
        """Dense neighbour ids of dense node ``i`` (ascending, zero-copy)."""
        return memoryview(self.indices)[self.indptr[i] : self.indptr[i + 1]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompactNetwork(n={self.num_nodes}, m={self.num_edges})"


class CompactEngine:
    """Batched synchronous round bookkeeping shared by compact kernels.

    Tracks exactly the runner-visible execution state — which nodes are
    still alive, when each node halted, how many communication rounds ran,
    and how many messages were delivered — as flat arrays and plain
    counters.  Kernels call :meth:`step` before simulating each
    communication round (replicating the reference runner's round-budget
    check), :meth:`halt` when a node commits, and :meth:`metrics` at the
    end to obtain an :class:`ExecutionMetrics` equal to the reference
    scheduler's.
    """

    __slots__ = (
        "num_nodes",
        "max_rounds",
        "alive",
        "halt_rounds",
        "n_alive",
        "rounds",
        "messages",
    )

    def __init__(self, num_nodes: int, max_rounds: int) -> None:
        self.num_nodes = num_nodes
        self.max_rounds = max_rounds
        self.alive = bytearray(b"\x01" * num_nodes)
        self.halt_rounds = [-1] * num_nodes
        self.n_alive = num_nodes
        self.rounds = 0
        self.messages = 0

    def step(self) -> int:
        """Enter the next communication round, enforcing the round budget.

        Mirrors the reference runner: with active nodes remaining, a new
        round may only start while fewer than ``max_rounds`` rounds have
        completed; otherwise the execution fails loudly.
        """
        if self.rounds >= self.max_rounds:
            raise RoundLimitExceeded(self.max_rounds, self.n_alive)
        self.rounds += 1
        return self.rounds

    def halt(self, node: int, round_number: int) -> None:
        """Record that dense node ``node`` halted at ``round_number``."""
        if self.alive[node]:
            self.alive[node] = 0
            self.halt_rounds[node] = round_number
            self.n_alive -= 1

    def metrics(self, node_ids: Tuple[NodeId, ...]) -> ExecutionMetrics:
        """Build the reference-equal :class:`ExecutionMetrics`."""
        halt_rounds = {
            node_ids[i]: r for i, r in enumerate(self.halt_rounds) if r >= 0
        }
        return ExecutionMetrics(
            rounds=self.rounds,
            messages_sent=self.messages,
            node_halt_rounds=halt_rounds,
            halted_nodes=len(halt_rounds),
            total_nodes=self.num_nodes,
        )
