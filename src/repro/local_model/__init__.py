"""Synchronous LOCAL-model simulator.

This subpackage provides the execution substrate for every distributed
algorithm in the reproduction: an undirected communication graph
(:class:`Network`), per-node state machines (:class:`NodeAlgorithm` /
:class:`NodeContext`), a synchronous scheduler, and a :class:`Runner`
that executes rounds until all nodes halt while counting rounds and
messages (:class:`ExecutionMetrics`).

The model matches Section 3 of the paper: computation proceeds in
synchronous communication rounds, message sizes are unbounded, nodes have
unique identifiers, and initially a node knows only its own identifier,
its local input, and the identifiers of its neighbours.
"""

from repro.local_model.compact import CompactEngine, CompactNetwork
from repro.local_model.errors import (
    AlgorithmError,
    HaltedNodeError,
    RoundLimitExceeded,
    SimulationError,
    TopologyError,
    UnknownNeighborError,
)
from repro.local_model.messages import Envelope, Inbox, Outbox
from repro.local_model.metrics import ExecutionMetrics
from repro.local_model.network import Network
from repro.local_model.node import (
    AlgorithmFactory,
    NodeAlgorithm,
    NodeContext,
    StatelessRelay,
)
from repro.local_model.runner import (
    DEFAULT_MAX_ROUNDS,
    ExecutionResult,
    Runner,
    run_algorithm,
)
from repro.local_model.scheduler import SynchronousScheduler
from repro.local_model.trace import ExecutionTrace, NullTrace, TraceEvent

__all__ = [
    "AlgorithmError",
    "AlgorithmFactory",
    "CompactEngine",
    "CompactNetwork",
    "DEFAULT_MAX_ROUNDS",
    "Envelope",
    "ExecutionMetrics",
    "ExecutionResult",
    "ExecutionTrace",
    "HaltedNodeError",
    "Inbox",
    "Network",
    "NodeAlgorithm",
    "NodeContext",
    "NullTrace",
    "Outbox",
    "RoundLimitExceeded",
    "Runner",
    "SimulationError",
    "StatelessRelay",
    "SynchronousScheduler",
    "TopologyError",
    "TraceEvent",
    "UnknownNeighborError",
    "run_algorithm",
]
