"""Communication topology for the LOCAL-model simulator.

A :class:`Network` is an immutable undirected simple graph together with
per-node *local inputs*.  It is the object handed to the
:class:`~repro.local_model.runner.Runner`, which instantiates one node
state machine per vertex.

The class intentionally does not depend on :mod:`networkx`; it accepts any
iterable of edges (including a ``networkx.Graph`` via :meth:`from_networkx`)
and stores plain adjacency sets, which keeps the hot simulation loop free
of external-library overhead.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Hashable, Iterable, Iterator, Mapping, Tuple

from repro.local_model.errors import TopologyError

NodeId = Hashable
Edge = Tuple[NodeId, NodeId]


class Network:
    """An undirected simple communication graph with local inputs.

    Parameters
    ----------
    nodes:
        Iterable of node identifiers.  Identifiers must be hashable and
        unique.  Nodes mentioned only in ``edges`` are added automatically.
    edges:
        Iterable of 2-tuples ``(u, v)``.  Self-loops and duplicate edges
        are rejected: the LOCAL model is defined on simple graphs and the
        paper's round bounds assume simple graphs.
    local_inputs:
        Optional mapping from node identifier to an arbitrary local input
        object (e.g. "this node initially holds a token", "this node is a
        server").  Nodes without an entry receive ``None``.
    """

    __slots__ = ("_adjacency", "_local_inputs", "_edges", "_compact_cache")

    def __init__(
        self,
        nodes: Iterable[NodeId] = (),
        edges: Iterable[Edge] = (),
        local_inputs: Mapping[NodeId, Any] | None = None,
    ) -> None:
        adjacency: Dict[NodeId, set] = {}

        def ensure(node: NodeId) -> None:
            try:
                hash(node)
            except TypeError as exc:  # pragma: no cover - defensive
                raise TopologyError(
                    f"node identifier {node!r} is not hashable"
                ) from exc
            adjacency.setdefault(node, set())

        for node in nodes:
            ensure(node)

        edge_set: set = set()
        for edge in edges:
            if len(edge) != 2:
                raise TopologyError(f"edge {edge!r} is not a 2-tuple")
            u, v = edge
            if u == v:
                raise TopologyError(f"self-loop on node {u!r} is not allowed")
            ensure(u)
            ensure(v)
            key = frozenset((u, v))
            if key in edge_set:
                raise TopologyError(f"duplicate edge {{{u!r}, {v!r}}}")
            edge_set.add(key)
            adjacency[u].add(v)
            adjacency[v].add(u)

        self._adjacency: Dict[NodeId, FrozenSet[NodeId]] = {
            node: frozenset(neighbors) for node, neighbors in adjacency.items()
        }
        self._edges: FrozenSet[FrozenSet[NodeId]] = frozenset(edge_set)
        inputs = dict(local_inputs or {})
        unknown = set(inputs) - set(self._adjacency)
        if unknown:
            raise TopologyError(
                f"local inputs given for unknown node(s): {sorted(map(repr, unknown))}"
            )
        self._local_inputs: Dict[NodeId, Any] = inputs

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_networkx(
        cls, graph: Any, local_inputs: Mapping[NodeId, Any] | None = None
    ) -> "Network":
        """Build a network from a ``networkx.Graph``-like object.

        Only the node set and edge set are used; graph/node/edge attributes
        are ignored (pass explicit ``local_inputs`` instead).
        """
        return cls(nodes=graph.nodes(), edges=graph.edges(), local_inputs=local_inputs)

    @classmethod
    def from_edges(
        cls, edges: Iterable[Edge], local_inputs: Mapping[NodeId, Any] | None = None
    ) -> "Network":
        """Build a network whose node set is implied by ``edges``."""
        return cls(nodes=(), edges=edges, local_inputs=local_inputs)

    @classmethod
    def from_validated_adjacency(
        cls,
        adjacency: Mapping[NodeId, FrozenSet[NodeId]],
        edges: Iterable[Edge],
        local_inputs: Mapping[NodeId, Any] | None = None,
    ) -> "Network":
        """Build a network from pre-validated adjacency data (trusted path).

        Skips the per-edge simple-graph validation of ``__init__`` — the
        caller guarantees ``adjacency`` is symmetric, loop-free, and
        consistent with ``edges``.  Structures that already maintain these
        invariants (:class:`~repro.graphs.layered.LayeredGraph` via
        :meth:`TokenDroppingInstance.to_network`) use this to convert in a
        single O(n + m) pass instead of re-deriving adjacency sets edge by
        edge.
        """
        network = cls.__new__(cls)
        network._adjacency = {
            node: (
                neighbors
                if isinstance(neighbors, frozenset)
                else frozenset(neighbors)
            )
            for node, neighbors in adjacency.items()
        }
        network._edges = frozenset(frozenset(edge) for edge in edges)
        inputs = dict(local_inputs or {})
        unknown = set(inputs) - set(network._adjacency)
        if unknown:
            raise TopologyError(
                f"local inputs given for unknown node(s): {sorted(map(repr, unknown))}"
            )
        network._local_inputs = inputs
        return network

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def node_ids(self) -> Tuple[NodeId, ...]:
        """All node identifiers in a deterministic (sorted-by-repr) order."""
        try:
            return tuple(sorted(self._adjacency))
        except TypeError:
            return tuple(sorted(self._adjacency, key=repr))

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self.node_ids)

    def __len__(self) -> int:
        return len(self._adjacency)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._adjacency

    def neighbors(self, node: NodeId) -> FrozenSet[NodeId]:
        """Return the neighbour set of ``node``."""
        return self._adjacency[node]

    def degree(self, node: NodeId) -> int:
        """Return the degree of ``node``."""
        return len(self._adjacency[node])

    def max_degree(self) -> int:
        """Return Δ, the maximum degree of the network (0 for empty graphs)."""
        if not self._adjacency:
            return 0
        return max(len(n) for n in self._adjacency.values())

    def num_edges(self) -> int:
        """Return the number of undirected edges."""
        return len(self._edges)

    def edges(self) -> Tuple[Tuple[NodeId, NodeId], ...]:
        """Return all edges as ordered 2-tuples (deterministic order)."""
        out = []
        for edge in self._edges:
            u, v = tuple(edge)
            try:
                lo, hi = (u, v) if u <= v else (v, u)
            except TypeError:
                lo, hi = sorted((u, v), key=repr)
            out.append((lo, hi))
        return tuple(sorted(out, key=repr))

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Return True if ``{u, v}`` is an edge of the network."""
        return v in self._adjacency.get(u, frozenset())

    def local_input(self, node: NodeId) -> Any:
        """Return the local input of ``node`` (``None`` if not set)."""
        return self._local_inputs.get(node)

    def local_inputs(self) -> Dict[NodeId, Any]:
        """Return a copy of the full local-input mapping."""
        return dict(self._local_inputs)

    def with_local_inputs(self, local_inputs: Mapping[NodeId, Any]) -> "Network":
        """Return a copy of this network with replaced local inputs."""
        new = Network.__new__(Network)
        new._adjacency = self._adjacency
        new._edges = self._edges
        merged = dict(local_inputs)
        unknown = set(merged) - set(self._adjacency)
        if unknown:
            raise TopologyError(
                f"local inputs given for unknown node(s): {sorted(map(repr, unknown))}"
            )
        new._local_inputs = merged
        return new

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(n={len(self)}, m={self.num_edges()}, "
            f"max_degree={self.max_degree()})"
        )
