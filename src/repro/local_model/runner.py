"""Top-level driver for LOCAL-model executions.

:class:`Runner` wires a :class:`~repro.local_model.network.Network` to an
algorithm factory, runs synchronous rounds until every node halts (or a
round budget is exhausted), and returns an :class:`ExecutionResult`
containing per-node outputs and metrics.

Example
-------
>>> from repro.local_model import Network, Runner
>>> from repro.local_model.node import StatelessRelay
>>> net = Network(nodes=[1, 2], edges=[(1, 2)], local_inputs={1: "a", 2: "b"})
>>> result = Runner(net, StatelessRelay).run()
>>> result.outputs[1], result.metrics.rounds
('a', 0)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional

from repro import obs
from repro.dispatch import BackendError, resolve_backend
from repro.local_model.compact import CompactNetwork
from repro.local_model.errors import RoundLimitExceeded
from repro.local_model.metrics import ExecutionMetrics
from repro.local_model.network import Network
from repro.local_model.node import AlgorithmFactory
from repro.local_model.scheduler import SynchronousScheduler
from repro.local_model.trace import ExecutionTrace

NodeId = Hashable

#: Default hard cap on rounds.  All algorithms in this package come with
#: explicit poly(Δ) round bounds, so hitting this cap indicates a bug.
DEFAULT_MAX_ROUNDS = 1_000_000


@dataclass
class ExecutionResult:
    """Outcome of one simulated execution.

    Attributes
    ----------
    outputs:
        Mapping from node identifier to the node's committed output (the
        value passed to ``ctx.halt`` / ``ctx.set_output``).
    metrics:
        Round/message counters for the execution.
    trace:
        The execution trace if tracing was enabled, otherwise ``None``.
    """

    outputs: Dict[NodeId, Any]
    metrics: ExecutionMetrics
    trace: Optional[ExecutionTrace] = None

    @property
    def rounds(self) -> int:
        """Shorthand for ``metrics.rounds``."""
        return self.metrics.rounds


class Runner:
    """Runs a distributed algorithm on a network until completion.

    Parameters
    ----------
    network:
        Topology plus per-node local inputs.
    algorithm:
        A :class:`NodeAlgorithm` subclass, or a callable
        ``(node_id) -> NodeAlgorithm`` for parameterised algorithms.
    max_rounds:
        Hard cap on the number of rounds; :class:`RoundLimitExceeded` is
        raised if some node is still active when it is reached.  Pass a
        value derived from the algorithm's theoretical bound to turn the
        bound itself into a checked invariant.
    trace:
        Optional :class:`ExecutionTrace` to record messages and halts.
        Tracing records every individual message, so it always runs on the
        reference scheduler.
    backend:
        Per-execution backend override (see :mod:`repro.dispatch`).  With
        the default (``None``), the ``REPRO_BACKEND`` environment variable
        and then the auto rule apply: algorithms whose factory registers a
        ``compact_kernel`` run the int-array fast path, everything else
        runs the reference scheduler.  ``backend="dict"`` forces the
        reference scheduler; ``backend="compact"`` forces the kernel and
        raises :class:`~repro.dispatch.BackendError` when none is
        registered (or when a trace is requested).
    """

    def __init__(
        self,
        network: Network,
        algorithm: Any,
        *,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        trace: Optional[ExecutionTrace] = None,
        backend: Optional[str] = None,
    ) -> None:
        if max_rounds < 0:
            raise ValueError(f"max_rounds must be non-negative, got {max_rounds}")
        self.network = network
        self.factory = (
            algorithm
            if isinstance(algorithm, AlgorithmFactory)
            else AlgorithmFactory(algorithm)
        )
        self.max_rounds = max_rounds
        self.trace = trace
        self.backend = backend

    def run(self) -> ExecutionResult:
        """Execute the algorithm until every node halts.

        Returns
        -------
        ExecutionResult
            Node outputs, metrics, and (optionally) the trace.

        Raises
        ------
        RoundLimitExceeded
            If some node is still active after ``max_rounds`` rounds.
        """
        kernel = getattr(self.factory, "compact_kernel", None)
        fast_possible = kernel is not None and self.trace is None
        if self.backend is not None:
            choice = resolve_backend(
                self.backend, auto="compact" if fast_possible else "dict"
            )
            if choice == "compact":
                if kernel is None:
                    raise BackendError(
                        "backend='compact' requested but the algorithm registers "
                        "no compact kernel"
                    )
                if self.trace is not None:
                    raise BackendError(
                        "tracing records individual messages and requires the "
                        "reference scheduler; drop the trace or use backend='dict'"
                    )
                return self._run_compact(kernel)
        elif fast_possible and resolve_backend(None, auto="compact") == "compact":
            # No per-call override: the environment/auto rule applies, but
            # only algorithms with a registered kernel have a fast path —
            # a global REPRO_BACKEND=compact must not break the rest.
            return self._run_compact(kernel)
        return self._run_reference()

    def _run_compact(self, kernel: Any) -> ExecutionResult:
        """Fast path: intern the network once and run the int-array kernel."""
        with obs.span("local.run", backend="compact") as sp:
            compact = CompactNetwork.of(self.network)
            dense_outputs, metrics = kernel(compact, self.max_rounds)
            metrics.terminated = True
            sp.set(
                nodes=metrics.total_nodes,
                rounds=metrics.rounds,
                messages=metrics.messages_sent,
            )
        outputs = {
            compact.node_ids[i]: output for i, output in enumerate(dense_outputs)
        }
        return ExecutionResult(outputs=outputs, metrics=metrics, trace=None)

    def _run_reference(self) -> ExecutionResult:
        """Reference path: the per-node state-machine scheduler."""
        with obs.span("local.run", backend="dict") as sp:
            scheduler = SynchronousScheduler(
                self.network, self.factory, trace=self.trace
            )
            # Hoisted: at up to DEFAULT_MAX_ROUNDS iterations, even the
            # disabled span() call (and its kwargs dict) would be a
            # measurable per-round cost.
            traced = obs.enabled()
            scheduler.start()
            while not scheduler.all_halted():
                if scheduler.round_number >= self.max_rounds:
                    scheduler.stop()
                    raise RoundLimitExceeded(
                        self.max_rounds, sum(1 for _ in scheduler.active_nodes())
                    )
                if traced:
                    messages_before = scheduler.metrics.messages_sent
                    with obs.span(
                        "local.round", round=scheduler.round_number + 1
                    ) as rsp:
                        scheduler.step()
                        rsp.set(
                            messages=scheduler.metrics.messages_sent
                            - messages_before
                        )
                else:
                    scheduler.step()
            scheduler.stop()

            metrics: ExecutionMetrics = scheduler.metrics
            metrics.terminated = True
            sp.set(
                nodes=metrics.total_nodes,
                rounds=metrics.rounds,
                messages=metrics.messages_sent,
            )
        outputs = {
            node_id: ctx.output for node_id, ctx in scheduler.contexts.items()
        }
        return ExecutionResult(outputs=outputs, metrics=metrics, trace=self.trace)


def run_algorithm(
    network: Network,
    algorithm: Any,
    *,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    trace: Optional[ExecutionTrace] = None,
) -> ExecutionResult:
    """Convenience wrapper: ``Runner(network, algorithm, ...).run()``."""
    return Runner(network, algorithm, max_rounds=max_rounds, trace=trace).run()
