"""Exception hierarchy for the LOCAL-model simulator.

All simulator errors derive from :class:`SimulationError` so callers can
catch the whole family with a single ``except`` clause while still being
able to distinguish configuration mistakes (bad topology, unknown
neighbour) from runtime conditions (round budget exhausted).
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for every error raised by :mod:`repro.local_model`."""


class TopologyError(SimulationError):
    """The communication graph handed to the simulator is malformed.

    Raised for duplicate node identifiers, self-loops, dangling edge
    endpoints, or non-hashable node identifiers.
    """


class UnknownNeighborError(SimulationError):
    """A node attempted to send a message to a non-neighbour.

    The LOCAL model only allows communication along edges of the input
    graph; any attempt to address a node that is not adjacent is a bug in
    the algorithm under simulation and is surfaced immediately.
    """

    def __init__(self, sender: object, receiver: object) -> None:
        super().__init__(
            f"node {sender!r} attempted to send to {receiver!r}, "
            "which is not an adjacent node"
        )
        self.sender = sender
        self.receiver = receiver


class HaltedNodeError(SimulationError):
    """An operation was attempted on a node that has already halted."""


class RoundLimitExceeded(SimulationError):
    """The execution did not terminate within the allowed round budget.

    Algorithms in this package come with explicit round-complexity
    guarantees; exceeding a generous multiple of the guarantee indicates
    either a bug or an adversarial instance outside the algorithm's
    preconditions, so the runner fails loudly instead of spinning.
    """

    def __init__(self, limit: int, active_nodes: int) -> None:
        super().__init__(
            f"simulation exceeded the round limit of {limit} rounds "
            f"with {active_nodes} node(s) still active"
        )
        self.limit = limit
        self.active_nodes = active_nodes


class AlgorithmError(SimulationError):
    """A node algorithm violated its own protocol invariants.

    Algorithms raise this (directly or via helper assertions) when their
    local state reaches a configuration that the paper's invariants rule
    out -- e.g. a node holding two tokens in the token dropping game.
    """
