"""Node-side abstractions: per-node state and the algorithm interface.

A distributed algorithm in this package is a :class:`NodeAlgorithm`
subclass.  The runner creates **one algorithm instance per node** so
subclasses may freely keep per-node state on ``self``; the immutable
facts about the node (its identifier, neighbour set, local input) live in
the :class:`NodeContext` passed to every callback.

The execution contract per synchronous round is:

1. the runner collects the messages addressed to the node in the previous
   round into an :class:`~repro.local_model.messages.Inbox`;
2. it calls :meth:`NodeAlgorithm.on_round`;
3. the algorithm reads the inbox, updates its state, and queues outgoing
   messages with :meth:`NodeContext.send`;
4. once the node has produced its final output it calls
   :meth:`NodeContext.halt` (optionally with an output value).

Messages queued in round *t* are delivered at the start of round *t + 1*,
exactly as in the standard synchronous LOCAL model.
"""

from __future__ import annotations

import abc
from typing import Any, FrozenSet, Hashable

from repro.local_model.errors import HaltedNodeError, UnknownNeighborError
from repro.local_model.messages import Inbox, Outbox

NodeId = Hashable


class NodeContext:
    """Mutable per-node execution context owned by the runner.

    Instances expose the information a LOCAL-model node legitimately has
    access to: its own identifier, the identifiers of its neighbours, its
    local input, and primitives to send messages and halt.  They also carry
    the node's output once it halts.
    """

    __slots__ = (
        "node_id",
        "neighbors",
        "local_input",
        "round_number",
        "_outbox",
        "_halted",
        "_output",
    )

    def __init__(
        self, node_id: NodeId, neighbors: FrozenSet[NodeId], local_input: Any
    ) -> None:
        self.node_id = node_id
        self.neighbors = neighbors
        self.local_input = local_input
        self.round_number = 0
        self._outbox = Outbox()
        self._halted = False
        self._output: Any = None

    # -- messaging ------------------------------------------------------
    def send(self, neighbor: NodeId, payload: Any) -> None:
        """Queue ``payload`` for delivery to ``neighbor`` at the next round.

        Raises
        ------
        UnknownNeighborError
            If ``neighbor`` is not adjacent to this node.
        HaltedNodeError
            If the node has already halted.
        """
        if self._halted:
            raise HaltedNodeError(f"node {self.node_id!r} has halted and cannot send")
        if neighbor not in self.neighbors:
            raise UnknownNeighborError(self.node_id, neighbor)
        self._outbox.put(neighbor, payload)

    def broadcast(self, payload: Any) -> None:
        """Send the same ``payload`` to every neighbour."""
        for neighbor in self.neighbors:
            self.send(neighbor, payload)

    # -- lifecycle ------------------------------------------------------
    def halt(self, output: Any = None) -> None:
        """Mark this node as finished and record its final ``output``.

        A halted node is never scheduled again; messages addressed to it
        are silently dropped (they can no longer influence the output, so
        this matches the LOCAL-model convention that halted nodes have
        committed to their output).
        """
        self._halted = True
        self._output = output

    @property
    def halted(self) -> bool:
        """Whether the node has committed to its output."""
        return self._halted

    @property
    def output(self) -> Any:
        """The node's committed output (``None`` until it halts)."""
        return self._output

    def set_output(self, output: Any) -> None:
        """Update the provisional output without halting.

        Useful for algorithms whose output is well-defined at every round
        (e.g. the current orientation) and that stop via a global round
        budget rather than local detection.
        """
        self._output = output

    # -- runner-side plumbing ------------------------------------------
    def _drain_outbox(self) -> Outbox:
        """Return and reset the node's outbox (runner use only)."""
        outbox, self._outbox = self._outbox, Outbox()
        return outbox

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "halted" if self._halted else "active"
        return f"NodeContext({self.node_id!r}, {state}, round={self.round_number})"


class NodeAlgorithm(abc.ABC):
    """Base class for per-node LOCAL-model algorithms.

    Subclasses implement :meth:`on_start` (round 0 initialisation, may
    already send messages) and :meth:`on_round` (one synchronous round).
    The runner instantiates the class once per node via the
    :class:`AlgorithmFactory` protocol -- in the common case the class
    itself is used as the factory and receives no constructor arguments.
    """

    @abc.abstractmethod
    def on_start(self, ctx: NodeContext) -> None:
        """Initialise local state and optionally send round-0 messages."""

    @abc.abstractmethod
    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        """Execute one synchronous round given the delivered messages."""

    def on_stop(self, ctx: NodeContext) -> None:
        """Hook invoked once when the simulation ends (optional)."""


class AlgorithmFactory:
    """Creates one :class:`NodeAlgorithm` instance per node.

    Wraps either a ``NodeAlgorithm`` subclass or an arbitrary callable
    ``(node_id) -> NodeAlgorithm``.  Keeping this explicit allows
    algorithms to be parameterised (e.g. with tie-breaking policies)
    without resorting to globals.

    Parameters
    ----------
    factory:
        The per-node algorithm constructor.
    compact_kernel:
        Optional int-array fast path for the *whole execution*: a callable
        ``(compact_network, max_rounds) -> (outputs, metrics)`` where
        ``outputs`` is a list indexed by dense node id and ``metrics`` an
        :class:`~repro.local_model.metrics.ExecutionMetrics`.  A kernel
        promises to reproduce the reference scheduler's execution exactly
        (same outputs, same round count, same message count, same halt
        rounds); the :class:`~repro.local_model.runner.Runner` dispatches
        to it per :mod:`repro.dispatch` and falls back to the reference
        scheduler for algorithms that register no kernel.
    """

    def __init__(self, factory: Any, compact_kernel: Any = None) -> None:
        self.compact_kernel = compact_kernel
        if isinstance(factory, type) and issubclass(factory, NodeAlgorithm):
            self._factory = lambda node_id: factory()
        elif callable(factory):
            self._factory = factory
        else:  # pragma: no cover - defensive
            raise TypeError(
                "factory must be a NodeAlgorithm subclass or a callable "
                f"(node_id) -> NodeAlgorithm, got {factory!r}"
            )

    def create(self, node_id: NodeId) -> NodeAlgorithm:
        algorithm = self._factory(node_id)
        if not isinstance(algorithm, NodeAlgorithm):  # pragma: no cover - defensive
            raise TypeError(
                f"factory returned {algorithm!r}, expected a NodeAlgorithm instance"
            )
        return algorithm


class StatelessRelay(NodeAlgorithm):
    """A trivial algorithm that halts immediately, echoing its local input.

    Used in tests and as a smoke-test algorithm for the simulator itself.
    """

    def on_start(self, ctx: NodeContext) -> None:
        ctx.halt(ctx.local_input)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:  # pragma: no cover
        ctx.halt(ctx.local_input)
