"""Execution metrics collected by the runner.

The central quantity in this reproduction is the **number of synchronous
communication rounds** an algorithm uses, because all of the paper's
results are round-complexity bounds.  :class:`ExecutionMetrics` records the
round count along with message counts and per-node halting rounds, which
the analysis module aggregates across parameter sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional

NodeId = Hashable


@dataclass
class ExecutionMetrics:
    """Counters describing one simulated execution.

    Attributes
    ----------
    rounds:
        Number of synchronous rounds executed, **excluding** the round-0
        initialisation (``on_start``).  This matches the LOCAL-model
        convention where the output of a 0-round algorithm depends only on
        local inputs.
    messages_sent:
        Total number of (point-to-point) messages delivered over the whole
        execution.
    node_halt_rounds:
        For each node, the round number at the end of which it halted.
        Nodes still active when the runner stopped are absent.
    halted_nodes:
        Number of nodes that explicitly halted.
    total_nodes:
        Number of nodes in the simulated network.
    terminated:
        True when every node halted before the round limit was reached.
    """

    rounds: int = 0
    messages_sent: int = 0
    node_halt_rounds: Dict[NodeId, int] = field(default_factory=dict)
    halted_nodes: int = 0
    total_nodes: int = 0
    terminated: bool = False

    def record_halt(self, node_id: NodeId, round_number: int) -> None:
        """Record that ``node_id`` halted at the end of ``round_number``."""
        if node_id not in self.node_halt_rounds:
            self.node_halt_rounds[node_id] = round_number
            self.halted_nodes += 1

    @property
    def last_halt_round(self) -> Optional[int]:
        """The latest round at which any node halted (None if nobody halted)."""
        if not self.node_halt_rounds:
            return None
        return max(self.node_halt_rounds.values())

    def messages_per_round(self) -> float:
        """Average number of messages per executed round (0.0 if no rounds)."""
        if self.rounds == 0:
            return 0.0
        return self.messages_sent / self.rounds

    def summary(self) -> str:
        """Return a one-line human-readable summary of the execution."""
        status = "terminated" if self.terminated else "stopped"
        return (
            f"{status} after {self.rounds} rounds, "
            f"{self.messages_sent} messages, "
            f"{self.halted_nodes}/{self.total_nodes} nodes halted"
        )
