"""Optional execution tracing for the LOCAL-model simulator.

Traces are primarily a debugging and teaching aid: they let the examples
show, round by round, which messages were exchanged and when each node
halted, mirroring the "orange arrows" in Figure 2 of the paper.

Tracing is off by default because recording every message is costly on
large sweeps; the runner accepts an :class:`ExecutionTrace` instance to
turn it on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, List, Tuple

NodeId = Hashable


@dataclass(frozen=True)
class TraceEvent:
    """A single recorded event.

    ``kind`` is one of ``"message"``, ``"halt"`` or ``"round"``; the
    remaining fields are populated depending on the kind.
    """

    kind: str
    round_number: int
    node: NodeId = None
    peer: NodeId = None
    payload: Any = None


@dataclass
class ExecutionTrace:
    """Accumulates :class:`TraceEvent` records during a simulation.

    Parameters
    ----------
    record_messages:
        When False only round boundaries and halts are recorded, which is
        much cheaper on message-heavy executions.
    max_events:
        Safety valve: recording stops (silently) after this many events so
        that accidentally tracing a huge sweep cannot exhaust memory.
    """

    record_messages: bool = True
    max_events: int = 1_000_000
    events: List[TraceEvent] = field(default_factory=list)

    def _append(self, event: TraceEvent) -> None:
        if len(self.events) < self.max_events:
            self.events.append(event)

    def on_round_begin(self, round_number: int) -> None:
        self._append(TraceEvent(kind="round", round_number=round_number))

    def on_message(
        self, round_number: int, sender: NodeId, receiver: NodeId, payload: Any
    ) -> None:
        if self.record_messages:
            self._append(
                TraceEvent(
                    kind="message",
                    round_number=round_number,
                    node=sender,
                    peer=receiver,
                    payload=payload,
                )
            )

    def on_halt(self, round_number: int, node: NodeId, output: Any) -> None:
        self._append(
            TraceEvent(
                kind="halt", round_number=round_number, node=node, payload=output
            )
        )

    # -- queries --------------------------------------------------------
    def messages(self) -> List[TraceEvent]:
        """All message events in delivery order."""
        return [e for e in self.events if e.kind == "message"]

    def halts(self) -> List[TraceEvent]:
        """All halt events in order of occurrence."""
        return [e for e in self.events if e.kind == "halt"]

    def messages_in_round(self, round_number: int) -> List[TraceEvent]:
        """Message events sent during a specific round."""
        return [
            e
            for e in self.events
            if e.kind == "message" and e.round_number == round_number
        ]

    def rounds_recorded(self) -> int:
        """Number of round boundaries recorded."""
        return sum(1 for e in self.events if e.kind == "round")

    def format(self, max_lines: int = 200) -> str:
        """Render the trace as a plain-text transcript (for examples)."""
        lines: List[str] = []
        for event in self.events:
            if len(lines) >= max_lines:
                lines.append(f"... ({len(self.events) - max_lines} more events)")
                break
            if event.kind == "round":
                lines.append(f"--- round {event.round_number} ---")
            elif event.kind == "message":
                lines.append(
                    f"  {event.node!r} -> {event.peer!r}: {event.payload!r}"
                )
            elif event.kind == "halt":
                lines.append(
                    f"  {event.node!r} halted with output {event.payload!r}"
                )
        return "\n".join(lines)


def _noop(*_args: Any, **_kwargs: Any) -> None:
    """Shared do-nothing callback used when tracing is disabled."""


class NullTrace:
    """A trace object that records nothing (used when tracing is off)."""

    record_messages = False
    events: Tuple[TraceEvent, ...] = ()

    on_round_begin = staticmethod(_noop)
    on_message = staticmethod(_noop)
    on_halt = staticmethod(_noop)
