"""Lower-bound constructions and indistinguishability utilities.

The paper proves three lower bounds:

* **Theorem 4.6** -- token dropping (already at height 2) requires
  Ω(Δ + log n / log log n) rounds, by reduction from bipartite maximal
  matching;
* **Theorem 6.3** -- finding a stable orientation requires Ω(Δ) rounds,
  by an indistinguishability argument between a Δ-regular graph of girth
  ≥ Δ + 1 and a perfect Δ-ary tree (Lemmas 6.1 and 6.2);
* **Theorem 7.4** -- the 2-bounded stable assignment problem requires
  Ω(Δ + log n / log log n) rounds, again by reduction from maximal
  matching.

Lower bounds cannot be "run", but their *constructions* and *premises*
can: this subpackage builds the exact instance families the proofs use and
checks the lemmas' statements programmatically, which is what experiments
E2 and E5 report.
"""

from repro.lower_bounds.constructions import (
    height2_matching_instance,
    lemma61_violations,
    lemma62_witness,
    matching_from_height2_solution,
    theorem63_instance_pair,
)
from repro.lower_bounds.indistinguishability import (
    radius_t_view,
    view_signature,
    views_isomorphic,
)

__all__ = [
    "height2_matching_instance",
    "lemma61_violations",
    "lemma62_witness",
    "matching_from_height2_solution",
    "radius_t_view",
    "theorem63_instance_pair",
    "view_signature",
    "views_isomorphic",
]
