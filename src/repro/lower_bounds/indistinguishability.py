"""Local views and indistinguishability checks.

The Ω(Δ) lower bound of Theorem 6.3 is an indistinguishability argument:
a t-round LOCAL algorithm's output at a node is a function of the node's
*t-radius view* (the subgraph induced by nodes within distance t, rooted
at the node).  If two nodes in two different graphs have isomorphic
views, any t-round algorithm must behave identically at both.

This module computes t-radius views and checks rooted isomorphism, which
is what experiment E5 uses to certify that the node of high indegree in
the Δ-regular graph and the chosen tree node really are indistinguishable
for the radii the proof relies on.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

import networkx as nx

NodeId = Hashable


def radius_t_view(graph: nx.Graph, node: NodeId, t: int) -> nx.Graph:
    """The subgraph induced by all nodes within distance ``t`` of ``node``.

    Every node of the returned graph carries a ``dist`` attribute (its
    distance from the root), and the root carries ``is_root=True``.  In the
    LOCAL model this is exactly the information a t-round deterministic
    algorithm can gather (identifiers aside; the lower-bound argument
    quantifies over worst-case identifier assignments).
    """
    if t < 0:
        raise ValueError(f"radius must be non-negative, got {t}")
    distances = nx.single_source_shortest_path_length(graph, node, cutoff=t)
    view = graph.subgraph(distances).copy()
    nx.set_node_attributes(view, distances, "dist")
    view.nodes[node]["is_root"] = True
    return view


def views_isomorphic(
    graph_a: nx.Graph, node_a: NodeId, graph_b: nx.Graph, node_b: NodeId, t: int
) -> bool:
    """True iff the t-radius views of the two nodes are isomorphic as rooted graphs.

    The isomorphism must map the root to the root and preserve distances
    from the root (which rooted isomorphisms do automatically; matching on
    the precomputed ``dist`` attribute simply prunes the search).
    """
    view_a = radius_t_view(graph_a, node_a, t)
    view_b = radius_t_view(graph_b, node_b, t)
    if view_a.number_of_nodes() != view_b.number_of_nodes():
        return False
    if view_a.number_of_edges() != view_b.number_of_edges():
        return False

    def node_match(attrs_a: Dict, attrs_b: Dict) -> bool:
        return attrs_a.get("dist") == attrs_b.get("dist") and attrs_a.get(
            "is_root", False
        ) == attrs_b.get("is_root", False)

    matcher = nx.algorithms.isomorphism.GraphMatcher(
        view_a, view_b, node_match=node_match
    )
    return matcher.is_isomorphic()


def view_signature(graph: nx.Graph, node: NodeId, t: int) -> Tuple:
    """A cheap isomorphism-invariant fingerprint of a t-radius view.

    Not a complete invariant, but sufficient to distinguish views that
    differ in per-distance node/edge counts or degree multisets -- used to
    fail fast in sweeps before running the exact matcher.
    """
    view = radius_t_view(graph, node, t)
    per_distance: Dict[int, int] = {}
    for _, attrs in view.nodes(data=True):
        per_distance[attrs["dist"]] = per_distance.get(attrs["dist"], 0) + 1
    degree_multiset = tuple(sorted(d for _, d in view.degree()))
    return (
        tuple(sorted(per_distance.items())),
        view.number_of_edges(),
        degree_multiset,
    )
