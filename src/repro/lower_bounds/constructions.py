"""Instance families used by the paper's lower-bound arguments.

Theorem 4.6 (and Theorem 7.4) reduce *from* bipartite maximal matching:
an adversarially hard matching instance becomes a hard height-2 token
dropping (resp. 2-bounded assignment) instance.  The reduction direction
means we cannot "demonstrate" the lower bound by running an algorithm --
what we *can* do, and what experiments E2/E5 report, is

* build the reduction instances and verify the reduction's correctness
  claim (the token dropping output is a maximal matching);
* build the Theorem 6.3 instance pair (high-girth Δ-regular graph vs.
  perfect Δ-ary tree) and verify the premises of Lemmas 6.1 and 6.2 on the
  stable orientations our algorithms produce;
* verify the indistinguishability premise itself: the t-radius views of
  the designated nodes in the two graphs are isomorphic for
  ``t ≤ (girth − 1) / 2 − 1``.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Set, Tuple

import networkx as nx

from repro.core.orientation.problem import Orientation
from repro.core.token_dropping.game import TokenDroppingInstance
from repro.core.token_dropping.traversal import TokenDroppingSolution
from repro.graphs.bipartite import CustomerServerGraph
from repro.graphs.generators import high_girth_regular_graph, perfect_dary_tree
from repro.graphs.layered import LayeredGraph
from repro.graphs.validation import tree_heights

NodeId = Hashable


# ----------------------------------------------------------------------
# Theorem 4.6: height-2 token dropping from bipartite maximal matching
# ----------------------------------------------------------------------
def height2_matching_instance(graph: CustomerServerGraph) -> TokenDroppingInstance:
    """The Theorem 4.6 reduction: a bipartite graph as a height-2 game.

    Every customer-side node becomes a level-1 node holding a token and
    every server-side node a level-0 node; the token traversals of any
    valid solution then correspond exactly to a maximal matching of the
    bipartite graph.
    """
    levels: Dict[NodeId, int] = {}
    edges: List[Tuple[NodeId, NodeId]] = []
    for customer in graph.customers:
        levels[("U", customer)] = 1
    for server in graph.servers:
        levels[("V", server)] = 0
    for customer, server in graph.edges():
        edges.append((("V", server), ("U", customer)))
    layered = LayeredGraph(levels=levels, edges=edges)
    tokens = frozenset(("U", customer) for customer in graph.customers)
    return TokenDroppingInstance(layered, tokens=tokens)


def matching_from_height2_solution(
    graph: CustomerServerGraph, solution: TokenDroppingSolution
) -> Set[Tuple[NodeId, NodeId]]:
    """Extract the maximal matching encoded by a height-2 game solution.

    A token that moved from level 1 to level 0 matches its customer with
    the server it landed on; stationary tokens leave their customer
    unmatched.  The output-rule guarantees (unique destinations, edge
    disjointness, maximality) translate directly into the matching being a
    maximal matching -- :func:`repro.core.assignment.verify_maximal_matching`
    checks this independently in the tests and benchmarks.
    """
    del graph  # only needed by callers validating the result
    matching: Set[Tuple[NodeId, NodeId]] = set()
    for token, traversal in solution.traversals.items():
        if traversal.length == 0:
            continue
        (_, customer) = traversal.source
        (_, server) = traversal.destination
        matching.add((customer, server))
    return matching


# ----------------------------------------------------------------------
# Theorem 6.3: the Δ-regular graph vs. perfect Δ-ary tree pair
# ----------------------------------------------------------------------
def theorem63_instance_pair(
    delta: int,
    *,
    n_regular: Optional[int] = None,
    girth: Optional[int] = None,
    tree_depth: Optional[int] = None,
    seed: int = 0,
) -> Tuple[nx.Graph, nx.Graph, NodeId]:
    """Build the two graphs used in the proof of Theorem 6.3.

    Returns ``(regular_graph, tree, tree_root)`` where ``regular_graph``
    is Δ-regular with girth at least ``girth`` and ``tree`` is a perfect
    Δ-ary tree of depth ``tree_depth``.

    The proof requires girth ≥ Δ + 1 and depth Δ + 1; for the Δ used in
    experiments those graphs are enormous (Moore bound), so the defaults
    scale the construction down (girth ``min(Δ + 1, 5)`` -- triangle- and,
    where cheap, quadrilateral-free -- and depth ``min(Δ + 1, 4)``) while
    keeping every *checked* premise intact: the graph is verified to be
    Δ-regular with the stated girth and the tree to be a perfect Δ-ary
    tree.  Lemmas 6.1 and 6.2, which are what the experiments measure,
    hold for any such pair; only the radius over which the two views stay
    indistinguishable shrinks with the girth.
    """
    if delta < 3:
        raise ValueError(f"Theorem 6.3 needs Δ >= 3, got {delta}")
    if girth is None:
        girth = min(delta + 1, 5) if delta <= 3 else 4
    if tree_depth is None:
        tree_depth = min(delta + 1, 4)
    if n_regular is None:
        # Large enough for the swap heuristic to reach the girth target.
        n_regular = max(4 * delta * girth, 40)
        if (n_regular * delta) % 2 == 1:
            n_regular += 1
    regular = high_girth_regular_graph(delta, n_regular, girth=girth, seed=seed)
    tree, root = perfect_dary_tree(delta, tree_depth)
    return regular, tree, root


def lemma61_violations(
    tree: nx.Graph, orientation: Orientation
) -> List[Tuple[NodeId, int, int]]:
    """Check Lemma 6.1 on a stable orientation of a tree.

    Lemma 6.1: in any stable orientation of a perfect d-ary tree,
    ``indegree(v) ≤ h(v) + 1`` where ``h(v)`` is the distance to the
    closest leaf.  Returns the violating ``(node, load, height)`` triples
    (empty = lemma holds, as it must for correct algorithms).
    """
    heights = tree_heights(tree)
    violations = []
    for node in tree.nodes():
        load = orientation.load(node)
        if load > heights[node] + 1:
            violations.append((node, load, heights[node]))
    return violations


def lemma62_witness(orientation: Orientation, degree: int) -> Optional[NodeId]:
    """Check Lemma 6.2 on an orientation of a d-regular graph.

    Lemma 6.2: any orientation of a d-regular graph has a node with
    indegree at least ⌈d/2⌉.  Returns such a witness node (or None, which
    would contradict the lemma and therefore indicates a bug upstream).
    """
    threshold = math.ceil(degree / 2)
    for node in orientation.problem.nodes:
        if orientation.load(node) >= threshold:
            return node
    return None
